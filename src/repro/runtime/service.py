"""The run layer: a persistent multi-run scheduler and the one-shot service.

``RunRequest`` describes *what* to run (GA configuration, number of repeated
runs, fitness statistic, optionally a locus window of the panel) and *how* to
run it (execution backend, worker count, chunking, caching policy).

:class:`RunScheduler` is the persistent execution substrate: it builds **one**
backend evaluator (one worker farm, one shared-memory registration, one
content-affinity cache population) when constructed and keeps it alive across
arbitrarily many submitted requests — exactly the jump from "one region, one
run, one farm spin-up" to the genome-scale scan workload where hundreds of
windowed GA runs multiplex over a single substrate.  Jobs are queued with
:meth:`~RunScheduler.submit` and executed by :meth:`~RunScheduler.as_completed`
(streaming results as they finish, optionally ``jobs`` runs at a time) or
:meth:`~RunScheduler.map` (submission order).

:class:`RunService` keeps its PR-2 one-shot API — ``run(request)`` builds the
substrate, executes, tears down — but is now a thin wrapper that hands a
single job to a request-scoped scheduler.  The CLI ``run`` command and the
Table-2 / ablation / robustness harnesses route through these two classes, so
backend choice, seeding, caching policy and stats reporting live in exactly
one place.
"""

from __future__ import annotations

import queue as queue_module
import threading
import time
from dataclasses import dataclass, field, replace
from typing import Iterable, Iterator, Sequence

from ..core.config import GAConfig
from ..core.ga import AdaptiveMultiPopulationGA
from ..core.history import GAResult
from ..core.individual import HaplotypeIndividual
from ..genetics.constraints import HaplotypeConstraints
from ..genetics.dataset import GenotypeDataset, as_packed_dataset
from ..parallel.base import BaseBatchEvaluator, BatchEvaluator, EvaluationStats, SnpSet
from ..parallel.farm import FarmRecoveryPolicy
from ..parallel.pvm import EvaluationCostModel
from ..stats.evaluation import HaplotypeEvaluator
from .backends import DEFAULT_BACKEND, create_evaluator
from .spec import EvaluatorSpec

__all__ = [
    "RunRequest",
    "RunResult",
    "RunScheduler",
    "RunService",
    "backend_summary_line",
    "estimate_request_cost",
]


def estimate_request_cost(
    request: RunRequest, cost_model: EvaluationCostModel
) -> float:
    """Rough compute-cost estimate (seconds) of one request under a cost model.

    Used as a *relative* scheduling priority, not a forecast: the number of
    evaluations is bounded by the configuration (initial population plus
    offspring for the plausible generation count) and each evaluation is
    priced at the mean per-size cost of the configuration's haplotype range —
    the exponential :class:`~repro.parallel.pvm.EvaluationCostModel` term, so
    a window clamped to large haplotypes dwarfs a small-haplotype window,
    which is exactly the skew the cost-aware executor schedules around.
    """
    config = request.config or GAConfig()
    sizes = config.haplotype_sizes
    mean_cost = sum(cost_model.cost(size) for size in sizes) / len(sizes)
    n_generations = min(config.max_generations, 4 * config.termination_stagnation)
    n_evaluations = config.population_size + config.n_offspring * n_generations
    if config.max_evaluations is not None:
        n_evaluations = min(n_evaluations, config.max_evaluations)
    return request.n_runs * n_evaluations * mean_cost


def backend_summary_line(backend: str, stats: EvaluationStats) -> str:
    """The one-line reuse account printed by ``run`` and ``scan`` alike."""
    line = (
        f"evaluation backend: {backend} — {stats.n_requests} requests -> "
        f"{stats.n_evaluations} evaluations "
        f"({stats.reuse_rate:.1%} answered by dedup/caches)"
    )
    if stats.n_stacked_em > 0:
        line += (
            f"; {stats.n_stacked_em} stacked EM calls, "
            f"mean batch {stats.mean_stacked_batch_size:.1f} problems"
        )
    if stats.n_worker_deaths > 0:
        line += (
            f"; survived {stats.n_worker_deaths} worker death(s) "
            f"({stats.n_chunks_replayed} chunk(s) replayed, "
            f"{stats.n_worker_respawns} respawn(s))"
        )
    if stats.n_result_cache_hits > 0:
        line += (
            f"; {stats.n_result_cache_hits} window result(s) replayed from "
            f"the cross-request cache"
        )
    return line


@dataclass(frozen=True)
class RunRequest:
    """A declarative description of one (possibly repeated) GA execution.

    Attributes
    ----------
    config:
        GA parameters (default: the paper's :class:`GAConfig` defaults).
    n_runs:
        Number of independent runs; run ``i`` uses seed ``seed + i``.
    seed:
        Base seed; ``None`` uses ``config.seed``.
    statistic:
        CLUMP statistic optimised as fitness (ignored when ``spec`` given).
    spec:
        Full evaluator recipe; overrides ``statistic``.
    snp_indices:
        Optional sub-panel restriction (global SNP indices, e.g. a locus
        window of a chromosome-scale scan).  The GA then searches local
        indices ``0 … len(snp_indices) - 1``; fitnesses are computed on the
        corresponding global columns, so results are bit-identical to running
        on a zero-copy window view of the panel.
    backend:
        Execution-backend name (see :func:`repro.runtime.backends.backend_names`).
    n_workers, chunk_size:
        Parallel-backend sizing (ignored by ``serial``).
    dedup, cache_size, worker_cache_size:
        Batch fast-path policy for the backend evaluator.
    constraints:
        Haplotype-validity constraints (default: unconstrained; sized to the
        sub-panel when ``snp_indices`` is given).
    packed:
        Run on the 2-bit packed genotype substrate (bit-identical results,
        ~4× smaller shared-memory panels).
    hosts:
        ``backend="remote"`` only: worker hosts as ``"host:port"`` specs.
    steal_mode:
        Chunked process farms' queue substrate (``"master"`` or ``"shm"``).
    """

    config: GAConfig | None = None
    n_runs: int = 1
    seed: int | None = None
    statistic: str = "t1"
    spec: EvaluatorSpec | None = None
    snp_indices: tuple[int, ...] | None = None
    backend: str = DEFAULT_BACKEND
    n_workers: int | None = None
    chunk_size: int | None = None
    dedup: bool = True
    cache_size: int | None = BaseBatchEvaluator.DEFAULT_CACHE_SIZE
    worker_cache_size: int | None = BaseBatchEvaluator.DEFAULT_CACHE_SIZE
    constraints: HaplotypeConstraints | None = None
    packed: bool = False
    hosts: tuple[str, ...] | None = None
    steal_mode: str = "master"

    def resolved_spec(self) -> EvaluatorSpec:
        return self.spec if self.spec is not None else EvaluatorSpec(statistic=self.statistic)


@dataclass(frozen=True)
class RunResult:
    """Outcome of a :class:`RunRequest`.

    Attributes
    ----------
    runs:
        The per-run GA results, in seed order.
    stats:
        Backend evaluation stats merged over all runs (requests vs
        evaluations actually performed, reuse, timings) — scoped to exactly
        this request's work even when many jobs share a scheduler.
    backend:
        Name of the execution backend used.
    elapsed_seconds:
        Wall-clock time of the whole request.
    """

    runs: tuple[GAResult, ...]
    stats: EvaluationStats
    backend: str
    elapsed_seconds: float
    request: RunRequest = field(repr=False, default_factory=RunRequest)

    @property
    def result(self) -> GAResult:
        """The first run's result (the common single-run case)."""
        return self.runs[0]

    @property
    def n_evaluations(self) -> int:
        """Total fitness requests across runs (the paper's cost metric)."""
        return sum(run.n_evaluations for run in self.runs)

    @property
    def reuse_rate(self) -> float:
        """Fraction of requests answered without evaluating (dedup + caches)."""
        return self.stats.reuse_rate

    def best_per_size(self) -> dict[int, HaplotypeIndividual]:
        """Best individual of every size across all runs."""
        best: dict[int, HaplotypeIndividual] = {}
        for run in self.runs:
            for size, individual in run.best_per_size.items():
                current = best.get(size)
                if current is None or individual.fitness_value() > current.fitness_value():
                    best[size] = individual
        return best

    def summary_line(self) -> str:
        """One-line account of the backend work (surfaced by the CLI)."""
        return backend_summary_line(self.backend, self.stats)


class _JobEvaluator:
    """Per-job view onto the scheduler's shared backend evaluator.

    Implements the :class:`~repro.parallel.base.BatchEvaluator` protocol for
    one scheduled job: it optionally maps window-local SNP indices to global
    panel indices, serialises access to the shared evaluator (many jobs may
    run concurrently) and keeps the job's **own** :class:`EvaluationStats`, so
    each :class:`RunResult` reports exactly the work its request caused even
    though the caches and worker farm are shared.  ``close()`` is a no-op —
    the substrate belongs to the scheduler.
    """

    def __init__(
        self,
        evaluator: BatchEvaluator,
        lock: threading.Lock,
        snp_indices: tuple[int, ...] | None = None,
    ) -> None:
        self._evaluator = evaluator
        self._lock = lock
        self._mapping = tuple(int(s) for s in snp_indices) if snp_indices else None
        self._stats = EvaluationStats()

    @property
    def stats(self) -> EvaluationStats:
        return self._stats

    def evaluate_batch(self, batch: Sequence[SnpSet]) -> list[float]:
        if self._mapping is not None:
            mapping = self._mapping
            batch = [[mapping[int(s)] for s in snps] for snps in batch]
        # the lock both makes the shared evaluator safe under concurrent jobs
        # and guarantees the stats delta below covers exactly this batch
        with self._lock:
            before = self._evaluator.stats.copy()
            values = self._evaluator.evaluate_batch(batch)
            delta = self._evaluator.stats.since(before)
        self._stats.merge(delta)
        return values

    def evaluate(self, snps: SnpSet) -> float:
        return self.evaluate_batch([snps])[0]

    def close(self) -> None:
        pass


class RunScheduler:
    """A persistent multi-run scheduler over one shared execution substrate.

    The scheduler resolves its backend evaluator **once** (worker processes
    started once, shared-memory panel registered once) and executes every
    submitted :class:`RunRequest` against it, so N queued runs — e.g. one GA
    job per locus window of a genome-scale scan — pay one farm spin-up and
    share the master-side fitness cache and the slaves' content-affinity
    caches.  Execution policy (backend, worker count, chunking, caching)
    lives on the scheduler; a submitted request's own execution fields are
    ignored (only the one-shot :class:`RunService` honours them).

    Parameters
    ----------
    dataset:
        The full genotype panel every job evaluates against.
    source:
        Evaluator recipe: an :class:`EvaluatorSpec`, a live
        :class:`HaplotypeEvaluator` (its caches are then shared with in-process
        backends) or ``None`` (a default spec with ``statistic``).
    statistic:
        CLUMP statistic when no ``source`` is given.
    backend, n_workers, chunk_size, dedup, cache_size, worker_cache_size:
        Execution substrate configuration (see
        :func:`repro.runtime.backends.create_evaluator`).
    jobs:
        Maximum number of requests executed concurrently by
        :meth:`as_completed` / :meth:`map`.  Fitness batches are serialised
        through the shared substrate either way; extra jobs overlap GA
        bookkeeping (selection, variation, replacement) with other jobs'
        evaluation batches.  Results are bit-identical for any ``jobs`` value
        — every run is a deterministic function of its seed.
    cost_model:
        Optional calibrated :class:`~repro.parallel.pvm.EvaluationCostModel`.
        With ``jobs > 1`` the drain becomes a cost-aware executor: idle job
        slots take the *most expensive* queued request first (longest-
        processing-time-first keeps one huge window from becoming the
        straggler that outlives every other job), using
        :func:`estimate_request_cost` unless :meth:`submit` received an
        explicit ``cost``.  Results stay bit-identical — only the completion
        order changes.  ``jobs == 1`` always drains in submission order.
    recovery:
        Optional :class:`~repro.parallel.farm.FarmRecoveryPolicy` for the
        process-farm backends: the substrate survives slave deaths and hangs
        (lost chunks replayed bit-identically on survivors, optional
        respawns) and keeps draining on a shrunken farm.  The recovery events
        each job survived appear in its :class:`RunResult` stats
        (``n_worker_deaths`` / ``n_chunks_replayed`` / ``n_worker_respawns``)
        and in the scheduler-lifetime :attr:`stats`.
    worker_wrapper:
        Optional picklable wrapper applied to the worker evaluator factory
        before it ships to the slaves (fault-injection harness; see
        :mod:`repro.testing.faults`).
    hosts:
        ``backend="remote"`` only: the worker hosts as ``"host:port"``
        specs, one slave per entry (see :mod:`repro.runtime.remote`).
    steal_mode:
        Queue substrate of the chunked process farms: ``"master"`` (default)
        or ``"shm"`` (shared-memory steal deques — slaves self-serve refills
        and steal with no master round trip per chunk).
    """

    def __init__(
        self,
        dataset: GenotypeDataset,
        *,
        source: HaplotypeEvaluator | EvaluatorSpec | None = None,
        statistic: str = "t1",
        backend: str = DEFAULT_BACKEND,
        n_workers: int | None = None,
        chunk_size: int | None = None,
        dedup: bool = True,
        cache_size: int | None = BaseBatchEvaluator.DEFAULT_CACHE_SIZE,
        worker_cache_size: int | None = BaseBatchEvaluator.DEFAULT_CACHE_SIZE,
        jobs: int = 1,
        cost_model: EvaluationCostModel | None = None,
        recovery: FarmRecoveryPolicy | None = None,
        worker_wrapper=None,
        packed: bool = False,
        hosts: Sequence[str] | None = None,
        steal_mode: str = "master",
    ) -> None:
        if not isinstance(jobs, int) or isinstance(jobs, bool) or jobs < 1:
            raise ValueError(f"jobs must be a positive integer, got {jobs!r}")
        if source is None:
            source = EvaluatorSpec(statistic=statistic)
        if isinstance(source, HaplotypeEvaluator):
            self._spec = EvaluatorSpec.from_evaluator(source)
        elif isinstance(source, EvaluatorSpec):
            self._spec = source.normalized()
        else:
            raise TypeError(
                f"source must be a HaplotypeEvaluator, EvaluatorSpec or None, "
                f"got {type(source).__name__}"
            )
        if packed:
            # run the whole substrate on the 2-bit panel: shm segments hold
            # packed bytes and expansions are counted from packed columns
            dataset = as_packed_dataset(dataset)
        self._dataset = dataset
        self._backend = backend
        self._packed = bool(packed)
        self._jobs = jobs
        self._cost_model = cost_model
        self._lock = threading.Lock()
        # guards the pending queue (job threads pull from it while the
        # consumer may keep submitting); _lock stays dedicated to serialising
        # the shared evaluator
        self._queue_lock = threading.Lock()
        self._pending: list[tuple[int, RunRequest, float | None]] = []
        # results of jobs that finished during an abandoned concurrent drain;
        # handed out first by the next as_completed()
        self._unclaimed: dict[int, RunResult] = {}
        self._next_job_id = 0
        self._n_completed = 0
        self._closed = False
        self._evaluator = create_evaluator(
            backend,
            source,
            dataset=dataset,
            n_workers=n_workers,
            chunk_size=chunk_size,
            dedup=dedup,
            cache_size=cache_size,
            worker_cache_size=worker_cache_size,
            # the scheduler's (possibly calibrated) cost model also drives
            # the chunked farms' cost-balanced auto chunking
            cost_model=cost_model,
            recovery=recovery,
            worker_wrapper=worker_wrapper,
            packed=packed,
            hosts=hosts,
            steal_mode=steal_mode,
        )

    # ------------------------------------------------------------------ #
    @property
    def dataset(self) -> GenotypeDataset:
        return self._dataset

    @property
    def backend(self) -> str:
        return self._backend

    @property
    def packed(self) -> bool:
        """Whether the substrate runs on the 2-bit packed panel."""
        return self._packed

    @property
    def spec(self) -> EvaluatorSpec:
        return self._spec

    @property
    def jobs(self) -> int:
        return self._jobs

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def n_pending(self) -> int:
        return len(self._pending)

    @property
    def n_unclaimed(self) -> int:
        """Results of finished jobs an abandoned drain has not handed out yet."""
        return len(self._unclaimed)

    @property
    def n_completed(self) -> int:
        return self._n_completed

    @property
    def stats(self) -> EvaluationStats:
        """Substrate-lifetime stats (all jobs since the scheduler started)."""
        return self._evaluator.stats.copy()

    def summary_line(self) -> str:
        """Scheduler-lifetime reuse account (same format as ``run``'s)."""
        return backend_summary_line(self._backend, self._evaluator.stats)

    def farm_health(self) -> dict:
        """Liveness of the execution substrate (the health probe's farm card).

        Worker counts and lifetime recovery counters for farm backends; for
        the ``remote`` backend additionally the per-host statuses (heartbeat
        age, reconnect backoff) from
        :meth:`~repro.runtime.remote.RemoteSlavePool.check_hosts` — which
        also runs a health pass, so probing the daemon reaps silent hosts
        and re-admits recovered ones even between batches.
        """
        evaluator = self._evaluator
        farm = getattr(evaluator, "_farm", None)
        health: dict = {
            "backend": self._backend,
            "n_workers": getattr(evaluator, "n_workers", 1),
            "n_alive_workers": None,
            "recovery": None,
            "hosts": None,
        }
        if farm is not None:
            health["n_alive_workers"] = farm.n_alive_workers
            health["recovery"] = farm.recovery_counters()
            check_hosts = getattr(farm, "check_hosts", None)
            if check_hosts is not None:
                health["hosts"] = check_hosts()
                health["n_alive_workers"] = farm.n_alive_workers
        elif hasattr(evaluator, "recovery_counters"):
            health["recovery"] = evaluator.recovery_counters()
        return health

    def probe_evaluator(self) -> BatchEvaluator:
        """A job-scoped view of the substrate for calibration/timing probes.

        Batches travel the exact dispatch path scheduled runs use (lock,
        chunking, worker farm); the view keeps its own stats, so probe work
        appears in :attr:`stats` but not in any job's :class:`RunResult`.
        """
        return _JobEvaluator(self._evaluator, self._lock)

    # ------------------------------------------------------------------ #
    def _validate(self, request: RunRequest) -> None:
        if self._closed:
            raise RuntimeError("the scheduler has been closed")
        if request.n_runs < 1:
            raise ValueError("n_runs must be positive")
        spec = request.resolved_spec().normalized()
        if spec != self._spec:
            raise ValueError(
                f"request spec {spec} does not match the scheduler's substrate "
                f"spec {self._spec}; use one scheduler per evaluator recipe"
            )
        if request.snp_indices is not None:
            indices = request.snp_indices
            if len(indices) < 2:
                raise ValueError("snp_indices must select at least two SNPs")
            if len(set(indices)) != len(indices):
                raise ValueError("snp_indices must be distinct")
            if min(indices) < 0 or max(indices) >= self._dataset.n_snps:
                raise ValueError(
                    f"snp_indices out of range [0, {self._dataset.n_snps})"
                )

    def submit(self, request: RunRequest, *, cost: float | None = None) -> int:
        """Queue a request; returns its job id (used by :meth:`as_completed`).

        ``cost`` is the request's scheduling priority for cost-aware drains
        (higher runs earlier when ``jobs > 1``); when omitted it is estimated
        from the scheduler's ``cost_model`` (no model: first-in, first-out).
        Submitting *during* a drain is supported — job threads pull from the
        live queue, so a consumer can keep a bounded number of jobs in flight
        while streaming results (the scan runner's spill mode).
        """
        self._validate(request)
        if cost is None and self._cost_model is not None:
            cost = estimate_request_cost(request, self._cost_model)
        with self._queue_lock:
            job_id = self._next_job_id
            self._next_job_id += 1
            self._pending.append((job_id, request, cost))
        return job_id

    def _pop_next(self) -> tuple[int, RunRequest, float | None] | None:
        """Take the next queued job: the priciest known cost, else FIFO."""
        with self._queue_lock:
            if not self._pending:
                return None
            best = 0
            best_cost = self._pending[0][2]
            for index, (_job_id, _request, cost) in enumerate(self._pending):
                if cost is not None and (best_cost is None or cost > best_cost):
                    best, best_cost = index, cost
            return self._pending.pop(best)

    def _execute(self, request: RunRequest) -> RunResult:
        start = time.perf_counter()
        config = request.config or GAConfig()
        base_seed = config.seed if request.seed is None else request.seed
        n_snps = (
            len(request.snp_indices)
            if request.snp_indices is not None
            else self._dataset.n_snps
        )
        constraints = request.constraints or HaplotypeConstraints.unconstrained(n_snps)
        evaluator = _JobEvaluator(self._evaluator, self._lock, request.snp_indices)
        runs: list[GAResult] = []
        for run_index in range(request.n_runs):
            ga = AdaptiveMultiPopulationGA(
                n_snps=n_snps,
                config=config.with_seed(base_seed + run_index),
                constraints=constraints,
                evaluator=evaluator,
            )
            runs.append(ga.run())
        return RunResult(
            runs=tuple(runs),
            stats=evaluator.stats,
            backend=self._backend,
            elapsed_seconds=time.perf_counter() - start,
            request=request,
        )

    def run(self, request: RunRequest) -> RunResult:
        """Execute one request synchronously, bypassing the queue.

        Safe to call from many threads at once (the scan service runs one
        handler thread per client connection): evaluation batches serialise
        through the shared substrate, concurrent requests overlap their GA
        bookkeeping, and each result's stats cover exactly its own work.
        """
        self._validate(request)
        result = self._execute(request)
        with self._queue_lock:
            self._n_completed += 1
        return result

    def as_completed(self) -> Iterator[tuple[int, RunResult]]:
        """Execute every queued job, yielding ``(job_id, result)`` as they finish.

        With ``jobs == 1`` the queue is drained in submission order; with more
        jobs, up to ``jobs`` job threads pull from the queue — the most
        expensive known request first when a cost model or explicit costs are
        present — and results stream in completion order.  Either way each
        yielded result is bit-identical to a standalone execution of its
        request.  Jobs submitted while the drain is running join it (the
        consumer may keep a bounded window of jobs in flight).  Abandoning the
        iterator early (``break``, an exception in the consumer) loses
        nothing: unstarted jobs stay in the queue, and jobs that were already
        in flight finish and hand their results to the next drain.
        """
        while self._unclaimed:
            job_id = min(self._unclaimed)
            result = self._unclaimed.pop(job_id)
            self._n_completed += 1
            yield job_id, result
        if self._jobs == 1:
            while True:
                with self._queue_lock:
                    if not self._pending:
                        return
                    job_id, request, cost = self._pending.pop(0)
                try:
                    result = self._execute(request)
                except BaseException:
                    # same retry semantics as the concurrent path: a failed
                    # job stays in the queue and re-runs on the next drain
                    with self._queue_lock:
                        self._pending.insert(0, (job_id, request, cost))
                    raise
                self._n_completed += 1
                yield job_id, result
        yield from self._drain_concurrently()

    def _drain_concurrently(self) -> Iterator[tuple[int, RunResult]]:
        """The ``jobs > 1`` drain: job threads steal queued work by priority.

        Runs in rounds: a thread that polls the queue empty exits, but before
        the generator finishes it re-checks the queue — a submission that
        raced past the exiting threads (the consumer topping up mid-drain)
        starts a fresh round instead of being silently stranded.
        """
        while True:
            with self._queue_lock:
                if not self._pending:
                    return
            yield from self._drain_round()

    def _drain_round(self) -> Iterator[tuple[int, RunResult]]:
        results: queue_module.SimpleQueue = queue_module.SimpleQueue()
        stop = threading.Event()
        sentinel = object()

        def job_thread() -> None:
            try:
                while not stop.is_set():
                    entry = self._pop_next()
                    if entry is None:
                        return
                    job_id, request, cost = entry
                    try:
                        result = self._execute(request)
                    except BaseException as exc:  # re-raised by the consumer
                        results.put((job_id, request, cost, None, exc))
                    else:
                        results.put((job_id, request, cost, result, None))
            finally:
                results.put(sentinel)

        threads = [
            threading.Thread(target=job_thread, daemon=True, name=f"run-job-{i}")
            for i in range(self._jobs)
        ]
        for thread in threads:
            thread.start()
        n_live = len(threads)
        failed: tuple[int, RunRequest, float | None] | None = None
        try:
            while n_live > 0 or not results.empty():
                item = results.get()
                if item is sentinel:
                    n_live -= 1
                    continue
                job_id, request, cost, result, exc = item
                if exc is not None:
                    # the failed job re-queues (and re-raises here); in-flight
                    # siblings finish in the cleanup below and surface on the
                    # next drain
                    failed = (job_id, request, cost)
                    raise exc
                self._n_completed += 1
                yield job_id, result
        finally:
            stop.set()
            for thread in threads:
                thread.join()
            requeued = [] if failed is None else [failed]
            while not results.empty():
                item = results.get()
                if item is sentinel:
                    continue
                job_id, request, cost, result, exc = item
                if exc is not None:
                    requeued.append((job_id, request, cost))
                else:
                    self._unclaimed[job_id] = result
            if requeued:
                with self._queue_lock:
                    self._pending = sorted(requeued) + self._pending

    def map(self, requests: Iterable[RunRequest]) -> list[RunResult]:
        """Execute requests (plus anything already queued) in submission order."""
        for request in requests:
            self.submit(request)
        results: dict[int, RunResult] = dict(self.as_completed())
        return [results[job_id] for job_id in sorted(results)]

    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Release the shared substrate (worker farm, shm segment); idempotent."""
        if self._closed:
            return
        self._closed = True
        self._evaluator.close()

    def __enter__(self) -> "RunScheduler":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class RunService:
    """Execute :class:`RunRequest` objects against one dataset, one at a time.

    The one-shot front door: each ``run`` builds a request-scoped
    :class:`RunScheduler` (workers started once, shared by every run of the
    request, and always released — the farm cannot leak), submits the single
    job and tears the substrate down.  Long-lived multi-request workloads
    (genome scans, request queues) should hold a :class:`RunScheduler`
    directly and keep the substrate warm.
    """

    def __init__(self, dataset: GenotypeDataset) -> None:
        self._dataset = dataset
        self._local_evaluators: dict[EvaluatorSpec, HaplotypeEvaluator] = {}

    @property
    def dataset(self) -> GenotypeDataset:
        return self._dataset

    def local_evaluator(self, request: RunRequest) -> HaplotypeEvaluator:
        """A master-side in-process evaluator matching the request's spec.

        Memoised per spec, so repeated requests (e.g. one per ablation
        scheme) share the evaluator's internal reuse caches exactly like the
        pre-service harnesses did.
        """
        spec = request.resolved_spec()
        evaluator = self._local_evaluators.get(spec)
        if evaluator is None:
            evaluator = spec.build(self._dataset)
            self._local_evaluators[spec] = evaluator
        return evaluator

    def run(self, request: RunRequest) -> RunResult:
        if request.n_runs < 1:
            raise ValueError("n_runs must be positive")
        start = time.perf_counter()
        # the in-process backends wrap the memoised local evaluator (shared
        # reuse caches across requests); the process backends derive their
        # worker-side spec from it
        scheduler = RunScheduler(
            self._dataset,
            source=self.local_evaluator(request),
            backend=request.backend,
            n_workers=request.n_workers,
            chunk_size=request.chunk_size,
            dedup=request.dedup,
            cache_size=request.cache_size,
            worker_cache_size=request.worker_cache_size,
            packed=request.packed,
            hosts=request.hosts,
            steal_mode=request.steal_mode,
        )
        try:
            result = scheduler.run(request)
        finally:
            scheduler.close()
        # account the substrate spin-up/teardown to the request, as before
        return replace(result, elapsed_seconds=time.perf_counter() - start)
