"""Parent selection schemes.

The paper does not commit to a particular selection operator, so the engine
defaults to binary tournament selection (robust to the incomparable fitness
scales of different sub-populations because tournaments never cross
sub-population boundaries); roulette-wheel selection on normalised fitness is
provided as an alternative.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .individual import HaplotypeIndividual
from .population import SubPopulation

__all__ = ["tournament_selection", "roulette_selection", "select_parent_pair"]


def tournament_selection(
    members: Sequence[HaplotypeIndividual],
    rng: np.random.Generator,
    *,
    tournament_size: int = 2,
) -> HaplotypeIndividual:
    """Pick the fittest of ``tournament_size`` uniformly drawn members."""
    if not members:
        raise ValueError("cannot select from an empty population")
    if tournament_size < 1:
        raise ValueError("tournament_size must be at least 1")
    k = min(tournament_size, len(members))
    indices = rng.choice(len(members), size=k, replace=False)
    return max((members[i] for i in indices), key=lambda ind: ind.fitness_value())


def roulette_selection(
    members: Sequence[HaplotypeIndividual],
    rng: np.random.Generator,
) -> HaplotypeIndividual:
    """Fitness-proportionate selection on within-group normalised fitness."""
    if not members:
        raise ValueError("cannot select from an empty population")
    values = np.asarray([ind.fitness_value() for ind in members], dtype=np.float64)
    worst = values.min()
    weights = values - worst
    total = weights.sum()
    if total <= 0:
        index = int(rng.integers(len(members)))
    else:
        index = int(rng.choice(len(members), p=weights / total))
    return members[index]


def select_parent_pair(
    subpopulation: SubPopulation,
    rng: np.random.Generator,
    *,
    tournament_size: int = 2,
    max_attempts: int = 10,
) -> tuple[HaplotypeIndividual, HaplotypeIndividual]:
    """Select two distinct parents from one sub-population by tournament.

    Distinctness is best-effort: when the sub-population has collapsed to a
    single haplotype the same individual may be returned twice, and callers
    (the crossover operators) treat that pair as non-applicable.
    """
    first = tournament_selection(subpopulation.members, rng, tournament_size=tournament_size)
    second = first
    for _ in range(max_attempts):
        second = tournament_selection(subpopulation.members, rng, tournament_size=tournament_size)
        if second.snps != first.snps:
            break
    return first, second
