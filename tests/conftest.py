"""Shared fixtures.

Most tests run against a deliberately small simulated study (60 individuals,
14 SNPs) so that every EH-DIALL + CLUMP evaluation costs well under a
millisecond; the full 106 × 51 canonical dataset is only used by the few
integration tests that need it.
"""

from __future__ import annotations

import os
import sys

import numpy as np
import pytest

# Fallback so the suite also runs from a source checkout without installation.
_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if os.path.isdir(_SRC) and _SRC not in sys.path:  # pragma: no cover - environment dependent
    sys.path.insert(0, _SRC)

from repro.genetics.constraints import HaplotypeConstraints, build_constraints  # noqa: E402
from repro.genetics.simulate import (  # noqa: E402
    DiseaseModel,
    PopulationModel,
    simulate_case_control_study,
)
from repro.stats.evaluation import HaplotypeEvaluator  # noqa: E402

#: Causal SNPs planted in the small test study.
SMALL_CAUSAL = (2, 5, 9)


@pytest.fixture(scope="session")
def small_study():
    """A small, strongly-associated case/control study (fast to evaluate)."""
    model = PopulationModel(n_snps=14, block_size=4, within_block_correlation=0.5)
    disease = DiseaseModel(
        causal_snps=SMALL_CAUSAL,
        risk_alleles=(2, 2, 2),
        baseline_penetrance=0.1,
        relative_risk=6.0,
        risk_haplotype_frequency=0.3,
    )
    return simulate_case_control_study(
        population_model=model,
        disease_model=disease,
        n_affected=30,
        n_unaffected=30,
        seed=7,
    )


@pytest.fixture(scope="session")
def small_dataset(small_study):
    return small_study.dataset


@pytest.fixture(scope="session")
def small_evaluator(small_dataset):
    return HaplotypeEvaluator(small_dataset)


@pytest.fixture(scope="session")
def small_constraints(small_dataset):
    return build_constraints(small_dataset)


@pytest.fixture(scope="session")
def unconstrained_14():
    return HaplotypeConstraints.unconstrained(14)


@pytest.fixture()
def rng():
    return np.random.default_rng(12345)
