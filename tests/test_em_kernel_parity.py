"""Parity tests: the segmented-reduction EM kernel vs the seed's scatter-add.

The optimised kernel in :mod:`repro.stats.em` must be numerically equivalent
to the reference implementation preserved in :mod:`repro.stats.em_reference`:
identical iteration counts and convergence flags, log-likelihoods within
1e-9 and frequencies within 1e-10, across random genotype matrices with
missing data and the degenerate edge cases.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.stats.em import (
    PhaseExpansion,
    PhaseExpansionCache,
    _genotype_pairs,
    concat_expansions,
    estimate_from_expansion,
    estimate_haplotype_frequencies,
    expand_phases,
    expansion_log_likelihood,
    run_em_stacked,
    stack_expansions,
)
from repro.stats.em_reference import (
    reference_estimate_from_expansion,
    reference_estimate_haplotype_frequencies,
    reference_expand_phases,
    reference_log_likelihood,
)

FREQ_ATOL = 1e-10
LL_ATOL = 1e-9


def _random_genotypes(seed: int, n: int, n_loci: int, missing_rate: float = 0.0) -> np.ndarray:
    rng = np.random.default_rng(seed)
    genotypes = rng.integers(0, 3, size=(n, n_loci)).astype(np.int8)
    if missing_rate > 0:
        genotypes[rng.random((n, n_loci)) < missing_rate] = -1
    return genotypes


def _assert_parity(genotypes: np.ndarray, **kwargs) -> None:
    new = estimate_haplotype_frequencies(genotypes, **kwargs)
    old = reference_estimate_haplotype_frequencies(genotypes, **kwargs)
    assert new.n_iterations == old.n_iterations
    assert new.converged == old.converged
    assert new.n_individuals == old.n_individuals
    assert new.log_likelihood == pytest.approx(old.log_likelihood, abs=LL_ATOL)
    np.testing.assert_allclose(new.frequencies, old.frequencies, atol=FREQ_ATOL)


class TestExpansionParity:
    """The vectorised phase enumeration must match the scalar one exactly."""

    @settings(max_examples=40, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000),
           st.integers(min_value=1, max_value=8))
    def test_single_genotype_pairs_match_scalar(self, seed, n_loci):
        rng = np.random.default_rng(seed)
        genotype = rng.integers(0, 3, size=n_loci).astype(np.int8)
        expansion = expand_phases(genotype[None, :])
        vectorised = list(zip(expansion.pair_a.tolist(), expansion.pair_b.tolist()))
        assert vectorised == _genotype_pairs(genotype)

    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_matrix_expansion_matches_reference(self, seed):
        genotypes = _random_genotypes(seed, 40, 5, missing_rate=0.1)
        new = expand_phases(genotypes)
        old = reference_expand_phases(genotypes)
        np.testing.assert_array_equal(new.pair_a, old.pair_a)
        np.testing.assert_array_equal(new.pair_b, old.pair_b)
        np.testing.assert_array_equal(new.pair_class, old.pair_class)
        np.testing.assert_array_equal(new.class_counts, old.class_counts)
        np.testing.assert_array_equal(new.pair_multiplicity, old.pair_multiplicity)

    def test_expansion_is_class_sorted(self):
        expansion = expand_phases(_random_genotypes(3, 50, 6, missing_rate=0.05))
        assert expansion.is_class_sorted
        assert expansion.sorted_by_class() is expansion


class TestKernelParity:
    @settings(max_examples=30, deadline=None)
    @given(st.integers(min_value=0, max_value=100_000),
           st.integers(min_value=1, max_value=7),
           st.integers(min_value=3, max_value=80))
    def test_random_matrices(self, seed, n_loci, n_individuals):
        genotypes = _random_genotypes(seed, n_individuals, n_loci, missing_rate=0.08)
        _assert_parity(genotypes)

    def test_no_missing_data(self):
        _assert_parity(_random_genotypes(11, 60, 6))

    def test_heavy_missing_data(self):
        _assert_parity(_random_genotypes(12, 60, 4, missing_rate=0.5))

    def test_empty_expansion(self):
        genotypes = np.full((5, 3), -1, dtype=np.int8)
        _assert_parity(genotypes)
        result = estimate_haplotype_frequencies(genotypes)
        assert result.n_individuals == 0
        assert result.converged

    def test_all_homozygous(self):
        # no heterozygote anywhere: phases are unambiguous, one pair per class
        rng = np.random.default_rng(13)
        genotypes = (2 * rng.integers(0, 2, size=(40, 5))).astype(np.int8)
        expansion = expand_phases(genotypes)
        assert np.all(expansion.pair_multiplicity == 1.0)
        assert expansion.n_pairs == expansion.n_classes
        _assert_parity(genotypes)

    def test_single_locus(self):
        _assert_parity(_random_genotypes(14, 30, 1))

    def test_max_iter_cutoff(self):
        genotypes = _random_genotypes(15, 80, 6)
        _assert_parity(genotypes, max_iter=3)
        _assert_parity(genotypes, max_iter=0)

    def test_explicit_initial_frequencies(self):
        genotypes = _random_genotypes(16, 40, 3)
        rng = np.random.default_rng(17)
        initial = rng.random(8)
        initial /= initial.sum()
        _assert_parity(genotypes, initial_frequencies=initial)

    def test_log_likelihood_helper_matches_reference(self):
        genotypes = _random_genotypes(18, 50, 5, missing_rate=0.1)
        expansion = expand_phases(genotypes)
        rng = np.random.default_rng(19)
        freqs = rng.random(32)
        freqs /= freqs.sum()
        assert expansion_log_likelihood(expansion, freqs) == pytest.approx(
            reference_log_likelihood(expansion, freqs), abs=LL_ATOL
        )


class TestUnsortedExpansions:
    def test_hand_built_unsorted_expansion_is_normalised(self):
        genotypes = _random_genotypes(21, 30, 4, missing_rate=0.1)
        sorted_exp = expand_phases(genotypes)
        rng = np.random.default_rng(22)
        order = rng.permutation(sorted_exp.n_pairs)
        shuffled = PhaseExpansion(
            n_loci=sorted_exp.n_loci,
            class_counts=sorted_exp.class_counts,
            pair_a=sorted_exp.pair_a[order],
            pair_b=sorted_exp.pair_b[order],
            pair_class=sorted_exp.pair_class[order],
            pair_multiplicity=sorted_exp.pair_multiplicity[order],
        )
        assert not shuffled.is_class_sorted or np.all(np.diff(shuffled.pair_class) >= 0)
        a = estimate_from_expansion(shuffled)
        b = reference_estimate_from_expansion(sorted_exp)
        assert a.n_iterations == b.n_iterations
        assert a.log_likelihood == pytest.approx(b.log_likelihood, abs=LL_ATOL)
        np.testing.assert_allclose(a.frequencies, b.frequencies, atol=FREQ_ATOL)


class TestPooledExpansion:
    def test_concat_matches_reexpansion(self):
        g1 = _random_genotypes(31, 30, 4, missing_rate=0.05)
        g2 = _random_genotypes(32, 25, 4, missing_rate=0.05)
        pooled = estimate_from_expansion(
            concat_expansions(expand_phases(g1), expand_phases(g2))
        )
        direct = estimate_haplotype_frequencies(np.vstack([g1, g2]))
        # duplicated classes are mathematically equivalent to merged ones, so
        # the two EMs follow the same trajectory up to float summation order
        assert pooled.n_individuals == direct.n_individuals
        assert pooled.log_likelihood == pytest.approx(direct.log_likelihood, abs=1e-6)
        np.testing.assert_allclose(pooled.frequencies, direct.frequencies, atol=1e-6)

    def test_concat_with_empty_side(self):
        expansion = expand_phases(_random_genotypes(33, 20, 3))
        empty = expand_phases(np.full((4, 3), -1, dtype=np.int8))
        assert concat_expansions(expansion, empty) is expansion
        assert concat_expansions(empty, expansion) is expansion

    def test_concat_rejects_mismatched_loci(self):
        a = expand_phases(_random_genotypes(34, 10, 3))
        b = expand_phases(_random_genotypes(35, 10, 4))
        with pytest.raises(ValueError):
            concat_expansions(a, b)

    def test_concat_allele_frequencies_match_pooled(self):
        g1 = _random_genotypes(36, 30, 3)
        g2 = _random_genotypes(37, 20, 3)
        pooled = concat_expansions(expand_phases(g1), expand_phases(g2))
        np.testing.assert_allclose(
            pooled.allele_frequencies(), np.vstack([g1, g2]).mean(axis=0) / 2.0
        )


class TestWarmStart:
    def test_warm_start_converges_fast_to_same_likelihood(self):
        genotypes = _random_genotypes(41, 80, 5)
        cold = estimate_haplotype_frequencies(genotypes)
        warm = estimate_haplotype_frequencies(
            genotypes, initial_frequencies=cold.frequencies
        )
        assert warm.n_iterations <= 2
        assert warm.log_likelihood == pytest.approx(cold.log_likelihood, abs=1e-6)


def _assert_stacked_matches_scalar(expansions, *, initial_frequencies=None, **kwargs):
    """The stacked kernel must reproduce the scalar kernel *bitwise*.

    Bit-identity (not just tolerance-level agreement) is what makes batching
    a pure throughput decision: any partition of a workload into stacked
    calls — whole generations on the serial path, per-slave chunks on the
    farm — yields the same fitnesses, which the 201-locus scan determinism
    test relies on.
    """
    stacked = run_em_stacked(
        stack_expansions(expansions),
        initial_frequencies=initial_frequencies,
        **kwargs,
    )
    for index, (expansion, batched) in enumerate(zip(expansions, stacked)):
        initial = None if initial_frequencies is None else initial_frequencies[index]
        scalar = estimate_from_expansion(
            expansion, initial_frequencies=initial, **kwargs
        )
        assert batched.n_iterations == scalar.n_iterations
        assert batched.converged == scalar.converged
        assert batched.n_individuals == scalar.n_individuals
        assert batched.n_loci == scalar.n_loci
        assert batched.log_likelihood == scalar.log_likelihood
        np.testing.assert_array_equal(batched.frequencies, scalar.frequencies)


class TestStackedKernel:
    """The generation-batched kernel vs the scalar kernel, per problem."""

    def _random_problems(self, seed: int, count: int) -> list:
        rng = np.random.default_rng(seed)
        problems = []
        for _ in range(count):
            n = int(rng.integers(3, 90))
            n_loci = int(rng.integers(1, 8))
            missing = float(rng.choice([0.0, 0.05, 0.3]))
            genotypes = rng.integers(0, 3, size=(n, n_loci)).astype(np.int8)
            if missing > 0:
                genotypes[rng.random(genotypes.shape) < missing] = -1
            problems.append(expand_phases(genotypes))
        return problems

    @settings(max_examples=15, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_random_ragged_batches(self, seed):
        # mixed group sizes, locus counts and missingness in one stack
        _assert_stacked_matches_scalar(self._random_problems(seed, 12))

    def test_batch_of_one(self):
        _assert_stacked_matches_scalar(self._random_problems(61, 1))

    def test_large_batch(self):
        _assert_stacked_matches_scalar(self._random_problems(62, 64))

    def test_batch_with_empty_problem(self):
        problems = self._random_problems(63, 5)
        problems.insert(2, expand_phases(np.full((4, 3), -1, dtype=np.int8)))
        _assert_stacked_matches_scalar(problems)
        results = run_em_stacked(stack_expansions(problems))
        assert results[2].n_individuals == 0
        assert results[2].converged and results[2].n_iterations == 0

    def test_all_empty_batch(self):
        problems = [
            expand_phases(np.full((3, L), -1, dtype=np.int8)) for L in (1, 2, 4)
        ]
        results = run_em_stacked(stack_expansions(problems))
        assert all(r.converged and r.n_iterations == 0 for r in results)
        np.testing.assert_allclose(results[2].frequencies, np.full(16, 1 / 16))

    def test_all_converge_at_first_iteration(self):
        # warm-starting every problem from its own converged frequencies makes
        # the whole batch finish together within an iteration or two — the
        # all-finish-at-once exit path, no straggler compaction involved
        problems = self._random_problems(64, 8)
        initials = [estimate_from_expansion(e).frequencies for e in problems]
        _assert_stacked_matches_scalar(problems, initial_frequencies=initials)
        results = run_em_stacked(stack_expansions(problems), initial_frequencies=initials)
        assert all(r.n_iterations <= 2 for r in results)

    def test_max_iter_cutoff(self):
        problems = self._random_problems(65, 6)
        _assert_stacked_matches_scalar(problems, max_iter=3)
        _assert_stacked_matches_scalar(problems, max_iter=0)

    def test_mixed_warm_and_cold_starts(self):
        problems = self._random_problems(66, 6)
        initials = [None] * len(problems)
        initials[1] = estimate_from_expansion(problems[1]).frequencies
        initials[4] = estimate_from_expansion(problems[4]).frequencies
        _assert_stacked_matches_scalar(problems, initial_frequencies=initials)

    def test_heterogeneous_convergence_compaction(self):
        # deliberately mix a near-converged problem with cold ones so the
        # lazy compaction path (some finish, stragglers continue) is exercised
        problems = self._random_problems(67, 10)
        initials = [None] * len(problems)
        initials[0] = estimate_from_expansion(problems[0]).frequencies
        initials[7] = estimate_from_expansion(problems[7]).frequencies
        _assert_stacked_matches_scalar(problems, initial_frequencies=initials)

    def test_unsorted_expansions_are_normalised(self):
        base = expand_phases(_random_genotypes(68, 30, 4, missing_rate=0.1))
        rng = np.random.default_rng(69)
        order = rng.permutation(base.n_pairs)
        shuffled = PhaseExpansion(
            n_loci=base.n_loci,
            class_counts=base.class_counts,
            pair_a=base.pair_a[order],
            pair_b=base.pair_b[order],
            pair_class=base.pair_class[order],
            pair_multiplicity=base.pair_multiplicity[order],
        )
        _assert_stacked_matches_scalar([shuffled, base])

    def test_validation(self):
        problems = self._random_problems(70, 3)
        with pytest.raises(ValueError):
            stack_expansions([])
        stacked = stack_expansions(problems)
        with pytest.raises(ValueError):
            run_em_stacked(stacked, initial_frequencies=[None])  # wrong length
        bad = [None, np.full(3, 0.5), None]  # length 3 is never a state count
        with pytest.raises(ValueError):
            run_em_stacked(stacked, initial_frequencies=bad)
        with pytest.raises(ValueError):
            run_em_stacked(
                stacked,
                initial_frequencies=[
                    np.zeros(2 ** e.n_loci) for e in problems
                ],
            )


class TestPhaseExpansionCache:
    def test_hit_returns_same_object(self):
        genotypes = _random_genotypes(51, 30, 6)
        cache = PhaseExpansionCache(genotypes)
        first = cache.get((0, 2, 4))
        second = cache.get((4, 2, 0))  # key is the sorted tuple
        assert first is second
        assert cache.hits == 1 and cache.misses == 1

    def test_expansion_matches_direct(self):
        genotypes = _random_genotypes(52, 30, 6, missing_rate=0.1)
        cache = PhaseExpansionCache(genotypes)
        cached = cache.get((1, 3))
        direct = expand_phases(genotypes[:, [1, 3]])
        np.testing.assert_array_equal(cached.pair_a, direct.pair_a)
        np.testing.assert_array_equal(cached.class_counts, direct.class_counts)

    def test_lru_eviction(self):
        genotypes = _random_genotypes(53, 10, 6)
        cache = PhaseExpansionCache(genotypes, max_size=2)
        cache.get((0,))
        cache.get((1,))
        cache.get((0,))  # refresh recency of (0,)
        cache.get((2,))  # evicts (1,)
        assert len(cache) == 2
        cache.get((1,))
        assert cache.misses == 4  # (0,), (1,), (2,), (1,) again after eviction

    def test_validation(self):
        genotypes = _random_genotypes(54, 10, 3)
        with pytest.raises(ValueError):
            PhaseExpansionCache(genotypes, max_size=0)
        with pytest.raises(ValueError):
            PhaseExpansionCache(genotypes[0])

    def test_presorted_key_fast_path(self):
        # an already-normalised key (the evaluator's _validate_snps output)
        # must hit the same entry as the slow path, without re-sorting
        genotypes = _random_genotypes(55, 30, 6)
        cache = PhaseExpansionCache(genotypes)
        slow = cache.get((4, 0, 2))
        fast = cache.get((0, 2, 4), presorted=True)
        assert fast is slow
        assert cache.hits == 1 and cache.misses == 1
        fresh = cache.get((1, 3), presorted=True)
        direct = expand_phases(genotypes[:, [1, 3]])
        np.testing.assert_array_equal(fresh.pair_a, direct.pair_a)
