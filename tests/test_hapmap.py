"""Tests of the HapMap-style phased data support."""

import numpy as np
import pytest

from repro.genetics.alleles import STATUS_AFFECTED, STATUS_UNAFFECTED
from repro.genetics.hapmap import (
    HapMapLegend,
    HapMapPhasedData,
    attach_simulated_phenotype,
    phased_to_dataset,
    read_hapmap_phased,
    write_hapmap_phased,
)
from repro.genetics.simulate import DiseaseModel


@pytest.fixture()
def phased_data(rng):
    n_snps, n_ind = 10, 40
    legend = HapMapLegend(
        snp_ids=tuple(f"rs{i}" for i in range(n_snps)),
        positions=tuple(1000 * (i + 1) for i in range(n_snps)),
        allele0=("A",) * n_snps,
        allele1=("G",) * n_snps,
    )
    haplotypes = (rng.random((2 * n_ind, n_snps)) < 0.4).astype(np.int8)
    return HapMapPhasedData(
        legend=legend,
        haplotypes=haplotypes,
        sample_ids=tuple(f"NA{i:05d}" for i in range(n_ind)),
    )


class TestValidation:
    def test_legend_length_mismatch(self):
        with pytest.raises(ValueError):
            HapMapLegend(("rs1",), (1, 2), ("A",), ("G",))

    def test_odd_chromosome_count_rejected(self, phased_data):
        with pytest.raises(ValueError):
            HapMapPhasedData(
                legend=phased_data.legend,
                haplotypes=phased_data.haplotypes[:-1],
                sample_ids=phased_data.sample_ids,
            )

    def test_non_binary_entries_rejected(self, phased_data):
        bad = phased_data.haplotypes.copy()
        bad[0, 0] = 3
        with pytest.raises(ValueError):
            HapMapPhasedData(
                legend=phased_data.legend, haplotypes=bad, sample_ids=phased_data.sample_ids
            )


class TestRoundTrip:
    def test_write_then_read(self, phased_data, tmp_path):
        phased_path = tmp_path / "region.phased"
        legend_path = tmp_path / "region.legend"
        write_hapmap_phased(phased_data, phased_path, legend_path)
        loaded = read_hapmap_phased(phased_path, legend_path,
                                    sample_ids=phased_data.sample_ids)
        assert np.array_equal(loaded.haplotypes, phased_data.haplotypes)
        assert loaded.legend.snp_ids == phased_data.legend.snp_ids

    def test_nucleotide_letters_accepted(self, tmp_path):
        legend_path = tmp_path / "region.legend"
        legend_path.write_text("rs position a0 a1\nrs1 100 A G\nrs2 200 C T\n")
        phased_path = tmp_path / "region.phased"
        phased_path.write_text("A C\nG T\nA T\nG C\n")
        data = read_hapmap_phased(phased_path, legend_path)
        assert data.n_individuals == 2
        assert data.haplotypes.tolist() == [[0, 0], [1, 1], [0, 1], [1, 0]]

    def test_unknown_allele_rejected(self, tmp_path):
        legend_path = tmp_path / "region.legend"
        legend_path.write_text("rs position a0 a1\nrs1 100 A G\n")
        phased_path = tmp_path / "region.phased"
        phased_path.write_text("T\nA\n")
        with pytest.raises(ValueError, match="not in legend"):
            read_hapmap_phased(phased_path, legend_path)


class TestConversion:
    def test_phased_to_dataset_collapses_phase(self, phased_data):
        dataset = phased_to_dataset(phased_data)
        assert dataset.n_individuals == phased_data.n_individuals
        assert dataset.n_snps == phased_data.n_snps
        expected = phased_data.haplotypes[0::2] + phased_data.haplotypes[1::2]
        assert np.array_equal(dataset.genotypes, expected)
        assert np.all(dataset.status == STATUS_UNAFFECTED)

    def test_attach_simulated_phenotype(self, phased_data):
        disease = DiseaseModel(
            causal_snps=(1, 3), risk_alleles=(2, 2),
            baseline_penetrance=0.2, relative_risk=4.0,
        )
        dataset = attach_simulated_phenotype(phased_data, disease, seed=1)
        assert set(np.unique(dataset.status)) <= {STATUS_AFFECTED, STATUS_UNAFFECTED}
        # phenotype attachment must not alter the genotypes
        assert np.array_equal(dataset.genotypes, phased_to_dataset(phased_data).genotypes)

    def test_attach_phenotype_rejects_out_of_panel_snp(self, phased_data):
        disease = DiseaseModel(causal_snps=(99,), risk_alleles=(2,))
        with pytest.raises(ValueError):
            attach_simulated_phenotype(phased_data, disease)
