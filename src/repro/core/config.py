"""Configuration of the adaptive multi-population GA.

All parameters named in the paper (Section 5.2.1) are exposed here with the
paper's values as defaults:

* global crossover rate ``0.9``;
* total population size ``150``;
* termination when the best individual is unchanged for ``100`` generations;
* maximum haplotype size ``6`` (chosen by the biologists);
* random-immigrant stagnation threshold ``20`` generations.

The switches ``use_*`` correspond to the mechanisms the paper turns on and off
in its Section 5.2 scheme study (adaptive operators, size-changing mutations,
inter-population crossover, random immigrants), so the ablation experiment is
just a grid over configurations.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Literal

__all__ = ["GAConfig"]

AllocationStrategy = Literal["log_proportional", "proportional", "uniform"]


@dataclass(frozen=True)
class GAConfig:
    """Parameters of :class:`~repro.core.ga.AdaptiveMultiPopulationGA`.

    Attributes
    ----------
    min_haplotype_size, max_haplotype_size:
        Range of haplotype sizes; one sub-population is maintained per size.
    population_size:
        Total number of individuals across all sub-populations (paper: 150).
    allocation:
        How the total population is split across sizes.
        ``"log_proportional"`` (default) gives each size a share proportional
        to the logarithm of its search-space slice — "the number of
        individuals in each subpopulation increases with the size of the
        haplotypes in order to follow the growth of the search space";
        ``"proportional"`` uses the raw (clipped) slice sizes and
        ``"uniform"`` splits evenly.
    crossover_rate:
        Global crossover rate shared by the crossover operators (paper: 0.9).
    mutation_rate:
        Global mutation rate shared by the three mutation operators.
    min_operator_rate:
        The floor δ every adaptive operator keeps regardless of its profit.
    point_mutation_trials:
        Number of parallel trials of the SNP (point) mutation; the best
        resulting individual is kept (Section 4.3.1).
    tournament_size:
        Tournament size of the selection operator.
    offspring_per_generation:
        Number of crossover applications attempted per generation; ``None``
        derives it from ``population_size`` and ``crossover_rate``.
    termination_stagnation:
        Stop when the global best has not improved for this many generations
        (paper: 100).
    max_generations:
        Hard safety cap on the number of generations.
    max_evaluations:
        Optional hard cap on the number of fitness evaluations.
    random_immigrant_stagnation:
        Trigger the random-immigrant replacement when the best is unchanged
        for this many generations (paper: 20); ``use_random_immigrants``
        must also be true.
    use_adaptive_mutation, use_adaptive_crossover:
        Adapt operator rates from their measured progress; when false the
        rates stay at their uniform initial values.
    use_size_mutations:
        Enable the reduction and augmentation mutations that move individuals
        between sub-populations.
    use_inter_population_crossover:
        Enable crossover between parents of different sizes.
    use_random_immigrants:
        Enable the random-immigrant diversity mechanism.
    overlap_generations:
        Steady-state evaluation pipelining: with ``k > 0`` the engine plans
        (and submits for evaluation) up to ``k`` generations ahead while
        earlier generations' stragglers finish, overlapping GA bookkeeping
        with in-flight evaluation.  ``0`` (the default) is the paper's
        synchronous generation barrier and the determinism reference: the
        run is bit-identical to previous releases.  Any fixed ``k`` is still
        deterministic for a given seed, but lookahead plans from a
        population that lacks the in-flight offspring, so trajectories
        differ *between* ``k`` values (and the run may overshoot its
        termination point by up to ``k`` generations).
    seed:
        Seed of the GA's random generator.
    """

    min_haplotype_size: int = 2
    max_haplotype_size: int = 6
    population_size: int = 150
    allocation: AllocationStrategy = "log_proportional"

    crossover_rate: float = 0.9
    mutation_rate: float = 0.5
    min_operator_rate: float = 0.05
    point_mutation_trials: int = 4
    tournament_size: int = 2
    offspring_per_generation: int | None = None

    termination_stagnation: int = 100
    max_generations: int = 2000
    max_evaluations: int | None = None
    random_immigrant_stagnation: int = 20

    use_adaptive_mutation: bool = True
    use_adaptive_crossover: bool = True
    use_size_mutations: bool = True
    use_inter_population_crossover: bool = True
    use_random_immigrants: bool = True
    overlap_generations: int = 0

    seed: int = 0

    # ------------------------------------------------------------------ #
    def __post_init__(self) -> None:
        if self.min_haplotype_size < 1:
            raise ValueError("min_haplotype_size must be at least 1")
        if self.max_haplotype_size < self.min_haplotype_size:
            raise ValueError("max_haplotype_size must be >= min_haplotype_size")
        if self.population_size < self.n_subpopulations:
            raise ValueError(
                "population_size must allow at least one individual per sub-population"
            )
        if not 0.0 < self.crossover_rate <= 1.0:
            raise ValueError("crossover_rate must be in (0, 1]")
        if not 0.0 < self.mutation_rate <= 1.0:
            raise ValueError("mutation_rate must be in (0, 1]")
        if not 0.0 <= self.min_operator_rate < 1.0:
            raise ValueError("min_operator_rate must be in [0, 1)")
        # three mutation operators and two crossover operators share the
        # global rates; the floors must leave room for the adaptive part
        if 3 * self.min_operator_rate >= self.mutation_rate:
            raise ValueError("min_operator_rate too large for the global mutation rate")
        if 2 * self.min_operator_rate >= self.crossover_rate:
            raise ValueError("min_operator_rate too large for the global crossover rate")
        if self.point_mutation_trials < 1:
            raise ValueError("point_mutation_trials must be at least 1")
        if self.tournament_size < 1:
            raise ValueError("tournament_size must be at least 1")
        if self.offspring_per_generation is not None and self.offspring_per_generation < 1:
            raise ValueError("offspring_per_generation must be positive")
        if self.termination_stagnation < 1:
            raise ValueError("termination_stagnation must be positive")
        if self.max_generations < 1:
            raise ValueError("max_generations must be positive")
        if self.max_evaluations is not None and self.max_evaluations < 1:
            raise ValueError("max_evaluations must be positive")
        if self.random_immigrant_stagnation < 1:
            raise ValueError("random_immigrant_stagnation must be positive")
        if self.overlap_generations < 0:
            raise ValueError("overlap_generations must be non-negative")
        if self.allocation not in ("log_proportional", "proportional", "uniform"):
            raise ValueError(f"unknown allocation strategy {self.allocation!r}")

    # ------------------------------------------------------------------ #
    @property
    def haplotype_sizes(self) -> tuple[int, ...]:
        """The sizes for which a sub-population is maintained."""
        return tuple(range(self.min_haplotype_size, self.max_haplotype_size + 1))

    @property
    def n_subpopulations(self) -> int:
        return self.max_haplotype_size - self.min_haplotype_size + 1

    @property
    def n_offspring(self) -> int:
        """Number of crossover applications per generation."""
        if self.offspring_per_generation is not None:
            return self.offspring_per_generation
        return max(int(round(self.crossover_rate * self.population_size / 2)), 1)

    def with_scheme(
        self,
        *,
        adaptive: bool | None = None,
        size_mutations: bool | None = None,
        inter_population_crossover: bool | None = None,
        random_immigrants: bool | None = None,
    ) -> "GAConfig":
        """Copy of this config with some Section-5.2 mechanisms toggled."""
        changes: dict[str, bool] = {}
        if adaptive is not None:
            changes["use_adaptive_mutation"] = adaptive
            changes["use_adaptive_crossover"] = adaptive
        if size_mutations is not None:
            changes["use_size_mutations"] = size_mutations
        if inter_population_crossover is not None:
            changes["use_inter_population_crossover"] = inter_population_crossover
        if random_immigrants is not None:
            changes["use_random_immigrants"] = random_immigrants
        return replace(self, **changes)

    def with_seed(self, seed: int) -> "GAConfig":
        """Copy of this config with a different RNG seed."""
        return replace(self, seed=seed)
