"""Benchmark: master/slave dispatch protocols (workers x chunk size).

Measures the parallel evaluation layer end to end on a steady-state GA
workload and records the trajectory to ``BENCH_parallel.json``
(diffable with ``scripts/bench_compare.py``).

Workload
--------
Streams of generation batches mixing *fresh* haplotypes (new offspring) with
*re-requested* ones (elitist survivors, duplicate offspring, repeated
candidates) drawn from a recent-generations window.  The master-side batch
fast path is disabled, exactly as in the bounded-cache regime where
re-requests genuinely travel to the slaves — the regime the chunked protocol
is designed for.  Three revisit intensities are recorded:

* ``ga_trace`` (50% revisits) — a mid-run GA generation mix;
* ``service_steady_state`` (70% revisits) — the re-request-heavy traffic of
  a long-running evaluation service whose bounded master cache cannot hold
  the working set (stagnation phases, many concurrent runs over the same
  panel);
* ``cold`` (0% revisits, worker caches off) — pure dispatch overhead.

Protocols
---------
* ``individual`` — the seed protocol: one haplotype per pool task.  Which
  slave evaluates a haplotype is whatever the pool scheduler decides, so a
  re-requested haplotype usually misses the caches of the slave that
  evaluated it first.
* ``chunked`` — per-slave queues with content-affinity routing
  (:class:`repro.parallel.farm.ChunkedWorkerFarm`): a haplotype is always
  routed to the same slave, whose local batch fast path (worker LRU +
  evaluator expansion/result caches) answers re-requests without
  re-evaluating; each slave receives its share of a generation as chunks.

The headline number — recorded as
``chunked_vs_individual_gain_at_<N>_workers`` — is the throughput ratio of
the two protocols on the identical ``service_steady_state`` stream at the
same worker count; the ``ga_trace`` and ``cold`` ratios are recorded
alongside for honesty (the cold message-overhead saving is small on a single
machine).

Usage::

    python benchmarks/bench_parallel.py                 # full run
    python benchmarks/bench_parallel.py --quick         # CI smoke
    python benchmarks/bench_parallel.py -o out.json     # custom output path
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

import numpy as np

_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if os.path.isdir(_SRC) and _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.experiments.datasets import lille51  # noqa: E402
from repro.parallel.master_slave import MasterSlaveEvaluator  # noqa: E402
from repro.parallel.serial import SerialEvaluator  # noqa: E402
from repro.runtime.spec import EvaluatorSpec  # noqa: E402

DEFAULT_OUTPUT = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "BENCH_parallel.json"
)


def generation_stream(
    *,
    n_generations: int,
    batch_size: int,
    revisit_fraction: float,
    n_snps: int,
    sizes=(2, 3, 4, 5),
    window: int = 192,
    seed: int = 2004,
) -> list[list[tuple[int, ...]]]:
    """A deterministic stream of GA-shaped generation batches.

    Each generation draws ``revisit_fraction`` of its batch from the most
    recent ``window`` previously seen haplotypes (the GA's elitism /
    duplicate-offspring / repeated-candidate traffic is recency-local) and
    fills the rest with fresh ones.
    """
    rng = np.random.default_rng(seed)
    seen: list[tuple[int, ...]] = []
    stream: list[list[tuple[int, ...]]] = []

    def fresh() -> tuple[int, ...]:
        size = int(rng.choice(sizes))
        return tuple(sorted(rng.choice(n_snps, size=size, replace=False).tolist()))

    for generation in range(n_generations):
        batch: list[tuple[int, ...]] = []
        for _ in range(batch_size):
            if seen and rng.random() < revisit_fraction:
                pool = seen[-window:]
                batch.append(pool[int(rng.integers(len(pool)))])
            else:
                haplotype = fresh()
                batch.append(haplotype)
                seen.append(haplotype)
        stream.append(batch)
    return stream


def _run_stream(evaluator, stream) -> float:
    start = time.perf_counter()
    for batch in stream:
        evaluator.evaluate_batch(batch)
    return time.perf_counter() - start


def bench_protocol(
    dataset,
    stream,
    *,
    protocol: str,
    n_workers: int,
    chunk_size: int | None,
    worker_cache_size: int | None,
) -> dict:
    """Time one dispatch protocol over the whole stream (fresh farm)."""
    spec = EvaluatorSpec()
    if protocol == "serial":
        evaluator = SerialEvaluator(spec.build(dataset), dedup=False, cache_size=0)
    else:
        evaluator = MasterSlaveEvaluator(
            spec.build(dataset),
            n_workers=n_workers,
            dispatch="individual" if protocol == "individual" else "chunked",
            chunk_size=chunk_size if protocol == "chunked" else 1,
            worker_cache_size=worker_cache_size,
            dedup=False,
            cache_size=0,
        )
    try:
        evaluator.evaluate_batch(stream[0][: max(2, len(stream[0]) // 4)])  # warm-up
        elapsed = _run_stream(evaluator, stream)
        stats = evaluator.stats.counters()
    finally:
        evaluator.close()
    n_requests = sum(len(batch) for batch in stream)
    return {
        "protocol": protocol,
        "n_workers": n_workers,
        "chunk_size": chunk_size,
        "elapsed_seconds": elapsed,
        "requests_per_second": n_requests / elapsed if elapsed > 0 else 0.0,
        "n_requests": n_requests,
        "n_evaluations": stats["n_evaluations"],
        "n_cache_hits": stats["n_cache_hits"],
    }


def _bench_scenario(
    dataset,
    stream,
    results: dict,
    *,
    worker_counts,
    chunk_sizes,
    worker_cache_size,
    include_serial: bool,
) -> dict[int, float]:
    """Run every protocol over one stream; return gain per worker count."""
    gains: dict[int, float] = {}
    if include_serial:
        results["serial"] = bench_protocol(
            dataset, stream, protocol="serial", n_workers=1,
            chunk_size=None, worker_cache_size=None,
        )
    for n_workers in worker_counts:
        individual = bench_protocol(
            dataset, stream, protocol="individual", n_workers=n_workers,
            chunk_size=None, worker_cache_size=worker_cache_size,
        )
        results[f"individual_{n_workers}w"] = individual
        for chunk_size in chunk_sizes:
            label = f"chunked_{n_workers}w_c{chunk_size or 'auto'}"
            results[label] = bench_protocol(
                dataset, stream, protocol="chunked", n_workers=n_workers,
                chunk_size=chunk_size, worker_cache_size=worker_cache_size,
            )
        best_chunked = min(
            value["elapsed_seconds"]
            for key, value in results.items()
            if key.startswith(f"chunked_{n_workers}w")
        )
        gains[n_workers] = individual["elapsed_seconds"] / best_chunked
    return gains


def run_benchmark(*, quick: bool) -> dict:
    study = lille51()
    dataset = study.dataset
    n_generations = 5 if quick else 8
    batch_size = 48 if quick else 64
    worker_counts = (2, 4)
    chunk_sizes = (None,) if quick else (None, 8)

    streams = {
        "ga_trace": generation_stream(
            n_generations=n_generations, batch_size=batch_size,
            revisit_fraction=0.5, n_snps=dataset.n_snps,
        ),
        "service_steady_state": generation_stream(
            n_generations=n_generations, batch_size=batch_size,
            revisit_fraction=0.7, n_snps=dataset.n_snps, seed=2014,
        ),
        "cold": generation_stream(
            n_generations=max(2, n_generations // 2), batch_size=batch_size,
            revisit_fraction=0.0, n_snps=dataset.n_snps, seed=7,
        ),
    }

    report: dict = {
        "benchmark": "parallel_dispatch",
        "dataset": "lille51",
        "n_generations": n_generations,
        "batch_size": batch_size,
        "scenarios": {name: {} for name in streams},
        "headline": {},
    }

    for name, stream in streams.items():
        cold = name == "cold"
        gains = _bench_scenario(
            dataset,
            stream,
            report["scenarios"][name],
            worker_counts=worker_counts,
            # cold isolates dispatch overhead, so slave-side reuse is off
            chunk_sizes=(None,) if cold else chunk_sizes,
            worker_cache_size=0 if cold else None,
            include_serial=not cold,
        )
        if name == "service_steady_state":
            for n_workers, gain in gains.items():
                report["headline"][
                    f"chunked_vs_individual_gain_at_{n_workers}_workers"
                ] = gain
        else:
            for n_workers, gain in gains.items():
                report["headline"][
                    f"{name}_chunked_vs_individual_gain_at_{n_workers}_workers"
                ] = gain
    return report


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="CI-sized smoke run")
    parser.add_argument("-o", "--output", default=DEFAULT_OUTPUT,
                        help=f"output JSON path (default {DEFAULT_OUTPUT})")
    args = parser.parse_args(argv)

    report = run_benchmark(quick=args.quick)

    for scenario, results in report["scenarios"].items():
        print(f"[{scenario}]")
        for label, result in results.items():
            print(
                f"  {label:24s} {result['elapsed_seconds']*1e3:9.1f} ms "
                f"({result['requests_per_second']:8.1f} req/s, "
                f"{result['n_evaluations']} evals)"
            )
    for key, gain in report["headline"].items():
        print(f"{key}: {gain:.2f}x")

    with open(args.output, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
