"""Tests of the persistent RunScheduler (one substrate, many runs)."""

import pytest

from repro.core.config import GAConfig
from repro.runtime.service import RunRequest, RunScheduler, RunService
from repro.runtime.spec import EvaluatorSpec


@pytest.fixture(scope="module")
def quick_config():
    return GAConfig(
        population_size=12,
        max_haplotype_size=3,
        termination_stagnation=2,
        max_generations=4,
    )


def _requests(quick_config, n=4):
    return [RunRequest(config=quick_config, seed=100 + i) for i in range(n)]


def _result_key(result):
    return [
        (size, ind.snps, ind.fitness_value())
        for size, ind in sorted(result.result.best_per_size.items())
    ]


class TestRunScheduler:
    def test_submit_and_stream(self, small_dataset, quick_config):
        with RunScheduler(small_dataset) as scheduler:
            ids = [scheduler.submit(r) for r in _requests(quick_config, 3)]
            assert ids == [0, 1, 2]
            assert scheduler.n_pending == 3
            seen = dict(scheduler.as_completed())
            assert sorted(seen) == ids
            assert scheduler.n_pending == 0
            assert scheduler.n_completed == 3
            for result in seen.values():
                assert result.backend == "serial"
                assert result.runs

    def test_map_preserves_submission_order(self, small_dataset, quick_config):
        requests = _requests(quick_config, 3)
        with RunScheduler(small_dataset) as scheduler:
            results = scheduler.map(requests)
        assert [r.request.seed for r in results] == [100, 101, 102]

    def test_results_identical_across_jobs(self, small_dataset, quick_config):
        requests = _requests(quick_config, 4)
        with RunScheduler(small_dataset, jobs=1) as scheduler:
            sequential = scheduler.map(requests)
            total_seq = scheduler.stats
        with RunScheduler(small_dataset, jobs=3) as scheduler:
            concurrent = scheduler.map(requests)
            total_con = scheduler.stats
        for a, b in zip(sequential, concurrent):
            assert _result_key(a) == _result_key(b)
        # the work totals are completion-order invariant; only the split
        # between dedup hits and cache hits depends on the interleaving
        assert total_seq.n_requests == total_con.n_requests
        assert total_seq.n_evaluations == total_con.n_evaluations
        assert (
            total_seq.n_dedup_hits + total_seq.n_cache_hits
            == total_con.n_dedup_hits + total_con.n_cache_hits
        )

    def test_matches_standalone_service(self, small_dataset, quick_config):
        request = RunRequest(config=quick_config, seed=7)
        standalone = RunService(small_dataset).run(request)
        with RunScheduler(small_dataset) as scheduler:
            scheduled = scheduler.run(request)
        assert _result_key(standalone) == _result_key(scheduled)
        assert standalone.stats.counters() == scheduled.stats.counters()

    def test_per_job_stats_are_scoped(self, small_dataset, quick_config):
        with RunScheduler(small_dataset) as scheduler:
            first = scheduler.run(RunRequest(config=quick_config, seed=1))
            second = scheduler.run(RunRequest(config=quick_config, seed=1))
            # identical request replayed on a warm substrate: all requests
            # answered by the shared cache, none evaluated again
            assert second.stats.n_requests == first.stats.n_requests
            assert second.stats.n_evaluations == 0
            total = scheduler.stats
        assert total.n_requests == first.stats.n_requests + second.stats.n_requests
        assert total.n_evaluations == first.stats.n_evaluations

    def test_window_restriction_matches_window_view(
        self, small_dataset, quick_config
    ):
        window = (3, 9)
        request = RunRequest(
            config=quick_config, seed=5, snp_indices=tuple(range(*window))
        )
        with RunScheduler(small_dataset) as scheduler:
            windowed = scheduler.run(request)
        view_service = RunService(small_dataset.window(*window))
        on_view = view_service.run(RunRequest(config=quick_config, seed=5))
        assert _result_key(windowed) == _result_key(on_view)

    def test_spec_mismatch_rejected(self, small_dataset, quick_config):
        with RunScheduler(small_dataset, statistic="t1") as scheduler:
            with pytest.raises(ValueError, match="spec"):
                scheduler.submit(RunRequest(config=quick_config, statistic="t2"))
            # a matching explicit spec is accepted
            scheduler.submit(
                RunRequest(config=quick_config, spec=EvaluatorSpec(statistic="t1"))
            )

    def test_spec_comparison_is_normalised(self, small_dataset, quick_config):
        """'T1' vs 't1' (the evaluator lower-cases) must not be a mismatch."""
        result = RunService(small_dataset).run(
            RunRequest(config=quick_config, seed=1, statistic="T1")
        )
        assert result.runs
        with RunScheduler(small_dataset, statistic="t1") as scheduler:
            scheduler.submit(RunRequest(config=quick_config, statistic="T1"))

    def test_abandoned_drain_keeps_unstarted_jobs(self, small_dataset, quick_config):
        with RunScheduler(small_dataset) as scheduler:
            ids = [scheduler.submit(r) for r in _requests(quick_config, 3)]
            for job_id, _result in scheduler.as_completed():
                break  # abandon after the first result
            assert scheduler.n_completed == 1
            assert scheduler.n_pending == 2
            remaining = dict(scheduler.as_completed())
            assert sorted(remaining) == ids[1:]

    def test_abandoned_concurrent_drain_loses_nothing(
        self, small_dataset, quick_config
    ):
        """jobs>1: in-flight jobs finish and surface on the next drain."""
        requests = _requests(quick_config, 4)
        with RunScheduler(small_dataset, jobs=1) as scheduler:
            expected = {
                job_id: _result_key(result)
                for job_id, result in zip(
                    range(4), scheduler.map(list(requests))
                )
            }
        with RunScheduler(small_dataset, jobs=2) as scheduler:
            ids = [scheduler.submit(r) for r in requests]
            collected = {}
            for job_id, result in scheduler.as_completed():
                collected[job_id] = _result_key(result)
                break  # abandon with one job potentially still in flight
            collected.update(
                (job_id, _result_key(result))
                for job_id, result in scheduler.as_completed()
            )
            assert sorted(collected) == ids
            assert scheduler.n_completed == len(ids)
        assert collected == expected

    @staticmethod
    def _fail_once(scheduler, seed):
        """Patch the scheduler to fail ``seed``'s first execution, before any
        substrate work (so per-job stats partitioning stays exact)."""
        original = scheduler._execute
        fired = []

        def flaky(request):
            if request.seed == seed and not fired:
                fired.append(True)
                raise RuntimeError("injected job failure")
            return original(request)

        scheduler._execute = flaky

    def test_failed_job_requeues_at_front_of_serial_drain(
        self, small_dataset, quick_config
    ):
        requests = _requests(quick_config, 3)
        with RunScheduler(small_dataset) as reference:
            expected = [_result_key(r) for r in reference.map(list(requests))]
        with RunScheduler(small_dataset) as scheduler:
            ids = [scheduler.submit(r) for r in requests]
            self._fail_once(scheduler, seed=101)
            collected = {}
            with pytest.raises(RuntimeError, match="injected"):
                for job_id, result in scheduler.as_completed():
                    collected[job_id] = result
            assert sorted(collected) == [ids[0]]
            assert scheduler.n_pending == 2
            assert scheduler._pending[0][0] == ids[1]  # failed job up front
            collected.update(scheduler.as_completed())  # re-runs and finishes
            assert sorted(collected) == ids
        assert [_result_key(collected[i]) for i in ids] == expected

    def test_mid_drain_failure_with_concurrent_jobs(
        self, small_dataset, quick_config
    ):
        """jobs>1: one job failing mid-drain propagates, requeues that job,
        and neither loses nor double-counts the surviving jobs' work."""
        requests = _requests(quick_config, 4)
        with RunScheduler(small_dataset, jobs=1) as reference:
            expected = [_result_key(r) for r in reference.map(list(requests))]
        with RunScheduler(small_dataset, jobs=2) as scheduler:
            ids = [scheduler.submit(r) for r in requests]
            self._fail_once(scheduler, seed=102)
            collected = {}
            with pytest.raises(RuntimeError, match="injected"):
                for job_id, result in scheduler.as_completed():
                    collected[job_id] = result
            # every job is accounted for: yielded, parked unclaimed by the
            # aborted drain, or back in the queue (the failed one included)
            assert ids[2] in [entry[0] for entry in scheduler._pending]
            assert (
                len(collected) + scheduler.n_unclaimed + scheduler.n_pending
                == len(ids)
            )
            collected.update(scheduler.as_completed())
            assert sorted(collected) == ids
            total = scheduler.stats
            # the surviving jobs' delta-scoped stats still partition the
            # substrate exactly (the failed attempt did no substrate work)
            for field in ("n_requests", "n_evaluations", "n_batches"):
                assert sum(
                    getattr(r.stats, field) for r in collected.values()
                ) == getattr(total, field)
        assert [_result_key(collected[i]) for i in ids] == expected

    def test_snp_indices_validation(self, small_dataset, quick_config):
        with RunScheduler(small_dataset) as scheduler:
            with pytest.raises(ValueError, match="at least two"):
                scheduler.submit(RunRequest(config=quick_config, snp_indices=(3,)))
            with pytest.raises(ValueError, match="distinct"):
                scheduler.submit(RunRequest(config=quick_config, snp_indices=(3, 3)))
            with pytest.raises(ValueError, match="range"):
                scheduler.submit(
                    RunRequest(config=quick_config, snp_indices=(0, 99))
                )

    def test_validation(self, small_dataset, quick_config):
        with pytest.raises(ValueError):
            RunScheduler(small_dataset, jobs=0)
        with RunScheduler(small_dataset) as scheduler:
            with pytest.raises(ValueError):
                scheduler.submit(RunRequest(config=quick_config, n_runs=0))
        with pytest.raises(RuntimeError):
            scheduler.submit(RunRequest(config=quick_config))
        scheduler.close()  # idempotent

    def test_probe_evaluator_is_stats_isolated(self, small_dataset, quick_config):
        with RunScheduler(small_dataset) as scheduler:
            probe = scheduler.probe_evaluator()
            values = probe.evaluate_batch([(0, 1), (2, 3)])
            assert len(values) == 2
            assert probe.stats.n_requests == 2
            result = scheduler.run(RunRequest(config=quick_config, seed=2))
            # the probe's work is on the substrate but not in the job's stats
            assert scheduler.stats.n_requests == 2 + result.stats.n_requests

    def test_summary_line_matches_run_format(self, small_dataset, quick_config):
        with RunScheduler(small_dataset) as scheduler:
            result = scheduler.run(RunRequest(config=quick_config, seed=3))
            line = scheduler.summary_line()
        assert line == result.summary_line()


class TestCostAwareExecutor:
    def test_estimate_is_monotone_in_haplotype_size(self, small_dataset):
        from repro.parallel.pvm import EvaluationCostModel
        from repro.runtime.service import estimate_request_cost

        model = EvaluationCostModel()
        cheap = RunRequest(config=GAConfig(max_haplotype_size=2, population_size=10))
        pricey = RunRequest(config=GAConfig(max_haplotype_size=6, population_size=10))
        assert estimate_request_cost(pricey, model) > estimate_request_cost(cheap, model)

    def test_explicit_costs_order_the_concurrent_drain(self, small_dataset, quick_config):
        """jobs=1 with a single job slot... use jobs=2 but serialise via a
        start log: the priciest queued job must start first."""
        import threading

        started = []
        log_lock = threading.Lock()

        with RunScheduler(small_dataset, jobs=2) as scheduler:
            original_execute = scheduler._execute

            def logging_execute(request):
                with log_lock:
                    started.append(request.seed)
                return original_execute(request)

            scheduler._execute = logging_execute
            costs = {100: 1.0, 101: 5.0, 102: 3.0, 103: 4.0}
            for seed, cost in costs.items():
                scheduler.submit(RunRequest(config=quick_config, seed=seed), cost=cost)
            results = dict(scheduler.as_completed())
        assert len(results) == 4
        # the two job threads take the two priciest first; the cheapest
        # queued request must be the last one started
        assert started[-1] == 100

    def test_scheduler_cost_model_orders_without_explicit_costs(self, small_dataset):
        from repro.parallel.pvm import EvaluationCostModel

        with RunScheduler(
            small_dataset, jobs=2, cost_model=EvaluationCostModel()
        ) as scheduler:
            small = GAConfig(population_size=8, max_haplotype_size=2,
                             termination_stagnation=1, max_generations=2)
            big = GAConfig(population_size=8, max_haplotype_size=4,
                           termination_stagnation=1, max_generations=2)
            id_small = scheduler.submit(RunRequest(config=small, seed=1))
            id_big = scheduler.submit(RunRequest(config=big, seed=2))
            entry = scheduler._pop_next()
            assert entry[0] == id_big  # the expensive request outranks FIFO
            # put it back so the drain still runs everything
            with scheduler._queue_lock:
                scheduler._pending.insert(0, entry)
            assert len(dict(scheduler.as_completed())) == 2

    def test_results_identical_with_and_without_cost_priority(
        self, small_dataset, quick_config
    ):
        from repro.parallel.pvm import EvaluationCostModel

        requests = _requests(quick_config, 4)
        with RunScheduler(small_dataset, jobs=2) as scheduler:
            fifo = scheduler.map(list(requests))
        with RunScheduler(
            small_dataset, jobs=2, cost_model=EvaluationCostModel()
        ) as scheduler:
            prioritised = scheduler.map(list(requests))
        for a, b in zip(fifo, prioritised):
            assert _result_key(a) == _result_key(b)

    def test_mid_drain_submission_joins_the_live_drain(
        self, small_dataset, quick_config
    ):
        """The scan runner's bounded-pending pattern: keep topping up while
        streaming, never holding more than the bound in the queue."""
        extra = iter(_requests(quick_config, 6)[2:])
        with RunScheduler(small_dataset, jobs=2) as scheduler:
            for request in _requests(quick_config, 2):
                scheduler.submit(request)
            collected = {}
            max_pending_seen = scheduler.n_pending
            while True:
                drained = False
                for job_id, result in scheduler.as_completed():
                    drained = True
                    collected[job_id] = result
                    request = next(extra, None)
                    if request is not None:
                        scheduler.submit(request)
                    max_pending_seen = max(max_pending_seen, scheduler.n_pending)
                if not drained and scheduler.n_pending == 0:
                    break
            assert len(collected) == 6
            assert scheduler.n_completed == 6
            assert max_pending_seen <= 2

    def test_single_drain_covers_late_submissions(self, small_dataset, quick_config):
        """After the round fix, ONE as_completed() call must yield jobs that
        were submitted while it was already streaming (no re-drain needed)."""
        extra = iter(_requests(quick_config, 5)[2:])
        with RunScheduler(small_dataset, jobs=2) as scheduler:
            for request in _requests(quick_config, 2):
                scheduler.submit(request)
            collected = {}
            for job_id, result in scheduler.as_completed():
                collected[job_id] = result
                request = next(extra, None)
                if request is not None:
                    scheduler.submit(request)
            assert len(collected) == 5
            assert scheduler.n_pending == 0


class TestConcurrentMultiClientScheduler:
    """Many client threads sharing ONE scheduler (the scan-service shape).

    ``RunScheduler.run()`` is documented thread-safe: the scan service runs
    one handler thread per connected client, all submitting against the same
    warm substrate.  These tests pin down the two contracts that serving
    depends on: per-job stats partition the substrate's lifetime counters
    exactly, and every client's results are bit-identical to running its
    scan alone.
    """

    N_CLIENTS = 4

    @staticmethod
    def _client_jobs(n_snps, quick_config, client):
        """Client ``client``'s interleaved scan: its own seed and geometry.

        Clients get different window sizes (hence different clamped configs
        and estimated costs — the mixed-priority traffic an admission queue
        sees) and different seeds, so no two clients submit the same work.
        """
        from repro.scan.planner import plan_scan

        return list(
            plan_scan(
                n_snps,
                window_size=4 + client % 2,
                overlap=2,
                config=quick_config,
                seed=11 + client,
            ).requests()
        )

    def test_interleaved_clients_match_isolated_reference(
        self, small_dataset, quick_config
    ):
        import threading

        from repro.scan.runner import _window_result

        def fingerprint(window, run):
            result = _window_result(window, run)
            return (
                result.window.index,
                result.best_snps,
                result.best_fitness,
                sorted(result.best_per_size.items()),
                result.n_evaluations,
            )

        # reference: each client's scan alone on a fresh, cold scheduler
        reference = {}
        for client in range(self.N_CLIENTS):
            with RunScheduler(small_dataset) as scheduler:
                reference[client] = [
                    fingerprint(window, scheduler.run(request))
                    for window, request in self._client_jobs(
                        small_dataset.n_snps, quick_config, client
                    )
                ]

        served: dict[int, list] = {}
        deltas: dict[int, list] = {}
        errors: list[BaseException] = []
        barrier = threading.Barrier(self.N_CLIENTS)
        with RunScheduler(small_dataset) as scheduler:
            def client_thread(client):
                try:
                    rows, stats = [], []
                    jobs = self._client_jobs(
                        small_dataset.n_snps, quick_config, client
                    )
                    barrier.wait()  # maximise interleaving
                    for window, request in jobs:
                        run = scheduler.run(request)
                        rows.append(fingerprint(window, run))
                        stats.append(run.stats)
                    served[client] = rows
                    deltas[client] = stats
                except BaseException as exc:  # surfaced by the main thread
                    errors.append(exc)

            threads = [
                threading.Thread(target=client_thread, args=(client,))
                for client in range(self.N_CLIENTS)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=120)
            assert not errors, errors
            total = scheduler.stats
            assert scheduler.n_completed == sum(
                len(self._client_jobs(small_dataset.n_snps, quick_config, c))
                for c in range(self.N_CLIENTS)
            )

        # bit-identical per-client results despite interleaving: fitness is
        # pure, so whichever cache answers a request returns the same value
        for client in range(self.N_CLIENTS):
            assert served[client] == reference[client]

        # per-job deltas partition the substrate-lifetime counters exactly
        # (each job's since() delta is taken under the evaluation lock)
        for counter in ("n_requests", "n_evaluations", "n_batches"):
            assert sum(
                getattr(s, counter) for stats in deltas.values() for s in stats
            ) == getattr(total, counter), counter
        assert sum(
            s.n_dedup_hits + s.n_cache_hits
            for stats in deltas.values()
            for s in stats
        ) == total.n_dedup_hits + total.n_cache_hits
