"""Benchmark: Table 1 — size of the search space.

Regenerates the paper's Table 1 (number of possible haplotypes per size and
SNP-panel size).  The table is closed-form, so besides timing it the benchmark
asserts that every cell matches the published value and prints the table in
the paper's layout.
"""

from __future__ import annotations

from repro.experiments.table1 import PAPER_TABLE1_VALUES, run_table1


def test_table1_search_space(benchmark):
    result = benchmark(run_table1)
    for size, row in PAPER_TABLE1_VALUES.items():
        for n_snps, expected in row.items():
            assert result.values[size][n_snps] == expected
    print()
    print(result.format())


def test_table1_large_panels(benchmark):
    """Scaling check: the closed form stays instantaneous on very large panels."""
    result = benchmark(run_table1, snp_counts=(500, 1000, 5000), sizes=(2, 3, 4, 5, 6, 7, 8))
    assert result.values[8][5000] > 0
