"""Case/control genotype dataset container.

The paper's experiments use a table of unphased SNP genotypes for a set of
individuals, each labelled *affected*, *unaffected* (healthy) or *unknown*
(Section 5: 176 individuals — 53 affected, 53 healthy, 70 unknown — of which
106 individuals × 51 SNPs are used for the reported study).

:class:`GenotypeDataset` is the single in-memory representation used by every
other subsystem: the EH-DIALL/CLUMP evaluation pipeline, the pairwise-LD
tables, the constraint checks and the GA itself all consume it.

A dataset can carry its genotypes in one or both of two physical forms:

* the classic **byte matrix** — ``(n_individuals, n_snps)`` int8; and
* a **2-bit packed panel** (:class:`repro.genetics.packed.PackedPanel`) —
  4 genotypes per byte, SNP-major, with missing as the fourth state.

A *packed-native* dataset (built from a packed panel, ``genotypes=None``)
materialises the byte matrix lazily and only when some consumer actually
asks for it; the packed-aware consumers (phase expansion, the shared-memory
store, missing-rate counting) never do.  :class:`PackedGenotypeStore` packs
a dataset affected-first — the same row order the shared-memory store uses —
so group and window selections stay zero-copy views of one packed buffer.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np

from .alleles import (
    GENOTYPE_MISSING,
    STATUS_AFFECTED,
    STATUS_UNAFFECTED,
    STATUS_UNKNOWN,
    validate_genotype_array,
)
from .packed import PackedPanel, pack_genotypes

__all__ = [
    "GenotypeDataset",
    "DatasetSummary",
    "LocusWindow",
    "WindowPlan",
    "PackedGenotypeStore",
    "as_packed_dataset",
    "plan_windows",
    "shard_dataset",
]

#: SNP rows processed per step by chunked pack/hash loops (bounds temporaries).
_CHUNK_SNPS = 4096


@dataclass(frozen=True)
class DatasetSummary:
    """Lightweight summary statistics of a :class:`GenotypeDataset`."""

    n_individuals: int
    n_snps: int
    n_affected: int
    n_unaffected: int
    n_unknown: int
    missing_rate: float

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{self.n_individuals} individuals x {self.n_snps} SNPs "
            f"({self.n_affected} affected, {self.n_unaffected} unaffected, "
            f"{self.n_unknown} unknown status, "
            f"{self.missing_rate:.2%} missing genotypes)"
        )


class GenotypeDataset:
    """Unphased case/control SNP genotype matrix.

    Parameters
    ----------
    genotypes:
        Integer array of shape ``(n_individuals, n_snps)`` with entries in
        ``{0, 1, 2, -1}`` (see :mod:`repro.genetics.alleles`).
    status:
        Integer array of length ``n_individuals`` with entries in
        ``{0 (unaffected), 1 (affected), -1 (unknown)}``.
    snp_names:
        Optional SNP identifiers; defaults to ``"snp0" … "snpN-1"``.
    individual_ids:
        Optional individual identifiers; defaults to ``"ind0" …``.
    packed:
        Optional 2-bit packed panel carrying the same genotypes.  When given
        with ``genotypes=None`` the dataset is *packed-native*: the byte
        matrix is materialised lazily on first access, and packed-aware
        consumers never materialise it at all.
    """

    def __init__(
        self,
        genotypes: np.ndarray | Sequence[Sequence[int]] | None,
        status: np.ndarray | Sequence[int],
        snp_names: Sequence[str] | None = None,
        individual_ids: Sequence[str] | None = None,
        *,
        packed: PackedPanel | None = None,
    ) -> None:
        if genotypes is None:
            if packed is None:
                raise ValueError("either genotypes or a packed panel is required")
            # codes are valid by construction: unpacking maps 0/1/2/3 onto
            # 0/1/2/missing, so byte validation happens only if/when the
            # matrix is materialised from foreign byte input.
            geno = None
            n_individuals, n_snps = packed.n_individuals, packed.n_snps
        else:
            geno = validate_genotype_array(np.asarray(genotypes))
            if geno.ndim != 2:
                raise ValueError(f"genotypes must be 2-D, got shape {geno.shape}")
            n_individuals, n_snps = geno.shape
            if packed is not None and (
                packed.n_individuals != n_individuals or packed.n_snps != n_snps
            ):
                raise ValueError(
                    f"packed panel shape ({packed.n_individuals}, {packed.n_snps}) "
                    f"does not match genotypes shape {geno.shape}"
                )
        stat = np.asarray(status, dtype=np.int8)
        if stat.ndim != 1:
            raise ValueError("status must be a 1-D array")
        if stat.shape[0] != n_individuals:
            raise ValueError(
                f"status length {stat.shape[0]} does not match "
                f"{n_individuals} individuals"
            )
        valid_status = {STATUS_AFFECTED, STATUS_UNAFFECTED, STATUS_UNKNOWN}
        if not set(np.unique(stat).tolist()) <= valid_status:
            raise ValueError(f"status values must be in {sorted(valid_status)}")

        self._genotypes = geno
        self._packed = packed
        self._status = stat
        self._n_individuals = int(n_individuals)
        self._n_snps = int(n_snps)

        if snp_names is None:
            snp_names = [f"snp{i}" for i in range(n_snps)]
        if len(snp_names) != n_snps:
            raise ValueError("snp_names length does not match number of SNPs")
        if len(set(snp_names)) != len(snp_names):
            raise ValueError("snp_names must be unique")
        self._snp_names = tuple(str(s) for s in snp_names)

        if individual_ids is None:
            individual_ids = [f"ind{i}" for i in range(n_individuals)]
        if len(individual_ids) != n_individuals:
            raise ValueError("individual_ids length does not match number of individuals")
        self._individual_ids = tuple(str(s) for s in individual_ids)

    # ------------------------------------------------------------------ #
    # basic accessors
    # ------------------------------------------------------------------ #
    def _materialize(self) -> np.ndarray:
        """The byte genotype matrix, unpacking it on first demand.

        Unpacking is deterministic and idempotent, so a racing double
        materialisation is benign (last write wins with identical content).
        """
        if self._genotypes is None:
            self._genotypes = self._packed.unpack()
        return self._genotypes

    @property
    def genotypes(self) -> np.ndarray:
        """The ``(n_individuals, n_snps)`` genotype matrix (read-only view)."""
        view = self._materialize().view()
        view.flags.writeable = False
        return view

    @property
    def packed(self) -> PackedPanel | None:
        """The 2-bit packed panel carrying these genotypes, if one exists."""
        return self._packed

    @property
    def is_materialized(self) -> bool:
        """Whether the byte matrix currently exists in memory."""
        return self._genotypes is not None

    def with_packed(self) -> "GenotypeDataset":
        """This dataset with a packed panel attached (self if already packed)."""
        if self._packed is not None:
            return self
        return GenotypeDataset(
            self._genotypes,
            self._status,
            snp_names=self._snp_names,
            individual_ids=self._individual_ids,
            packed=PackedPanel(pack_genotypes(self._genotypes), self.n_individuals),
        )

    @property
    def status(self) -> np.ndarray:
        """Per-individual disease status (read-only view)."""
        view = self._status.view()
        view.flags.writeable = False
        return view

    @property
    def snp_names(self) -> tuple[str, ...]:
        return self._snp_names

    @property
    def individual_ids(self) -> tuple[str, ...]:
        return self._individual_ids

    @property
    def n_individuals(self) -> int:
        return self._n_individuals

    @property
    def n_snps(self) -> int:
        return self._n_snps

    def __len__(self) -> int:
        return self.n_individuals

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"GenotypeDataset(n_individuals={self.n_individuals}, n_snps={self.n_snps})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, GenotypeDataset):
            return NotImplemented
        return (
            np.array_equal(self._materialize(), other._materialize())
            and np.array_equal(self._status, other._status)
            and self._snp_names == other._snp_names
            and self._individual_ids == other._individual_ids
        )

    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        if self._packed is not None:
            # the packed panel is lossless (values are confined to
            # {0, 1, 2, missing}), so ship 2 bits per genotype instead of 8.
            state["_genotypes"] = None
        return state

    def fingerprint(self) -> str:
        """Content hash of dimensions, status and genotypes (hex digest).

        Representation-independent: packed-native and byte datasets with the
        same content hash identically.  Genotype bytes are folded SNP-major
        (one locus at a time) so a packed panel hashes chunk-by-chunk without
        ever materialising the full byte matrix.
        """
        digest = hashlib.sha256()
        digest.update(f"{self.n_individuals}x{self.n_snps}".encode())
        digest.update(np.ascontiguousarray(self._status).tobytes())
        for start in range(0, self.n_snps, _CHUNK_SNPS):
            stop = min(start + _CHUNK_SNPS, self.n_snps)
            if self._genotypes is not None:
                chunk = self._genotypes[:, start:stop].T
            else:
                chunk = self._packed.column_window(start, stop).unpack().T
            digest.update(np.ascontiguousarray(chunk).tobytes())
        return digest.hexdigest()

    # ------------------------------------------------------------------ #
    # group selectors
    # ------------------------------------------------------------------ #
    @property
    def affected_mask(self) -> np.ndarray:
        return self._status == STATUS_AFFECTED

    @property
    def unaffected_mask(self) -> np.ndarray:
        return self._status == STATUS_UNAFFECTED

    @property
    def unknown_mask(self) -> np.ndarray:
        return self._status == STATUS_UNKNOWN

    @property
    def n_affected(self) -> int:
        return int(np.count_nonzero(self.affected_mask))

    @property
    def n_unaffected(self) -> int:
        return int(np.count_nonzero(self.unaffected_mask))

    @property
    def n_unknown(self) -> int:
        return int(np.count_nonzero(self.unknown_mask))

    def affected(self) -> "GenotypeDataset":
        """Sub-dataset restricted to affected individuals."""
        return self.select_individuals(np.flatnonzero(self.affected_mask))

    def unaffected(self) -> "GenotypeDataset":
        """Sub-dataset restricted to unaffected individuals."""
        return self.select_individuals(np.flatnonzero(self.unaffected_mask))

    def with_known_status(self) -> "GenotypeDataset":
        """Sub-dataset restricted to individuals with known status."""
        return self.select_individuals(np.flatnonzero(~self.unknown_mask))

    # ------------------------------------------------------------------ #
    # subsetting
    # ------------------------------------------------------------------ #
    def select_individuals(self, indices: Iterable[int] | np.ndarray) -> "GenotypeDataset":
        """New dataset containing only the given individual row indices.

        When the indices form a contiguous ascending run the rows are taken
        as a basic slice — a *view* sharing the parent's memory rather than a
        fancy-indexed copy.  The shared-memory execution backend relies on
        this: its genotype store lays the rows out affected-first, so the
        per-group sub-datasets of every worker's evaluator are windows into
        the one shared matrix instead of per-process copies.
        """
        idx = np.asarray(list(indices), dtype=np.intp)
        packed = None
        if idx.size and idx[0] >= 0 and np.array_equal(idx, np.arange(idx[0], idx[0] + idx.size)):
            rows = slice(int(idx[0]), int(idx[0]) + idx.size)
            if self._packed is not None:
                # bit-offset view: the group still shares the packed buffer
                packed = self._packed.row_window(rows.start, rows.stop)
            genotypes = self._genotypes[rows] if self._genotypes is not None else None
            status = self._status[rows]
        else:
            genotypes = self._materialize()[idx]
            status = self._status[idx]
        return GenotypeDataset(
            genotypes,
            status,
            snp_names=self._snp_names,
            individual_ids=[self._individual_ids[i] for i in idx],
            packed=packed,
        )

    def select_snps(self, indices: Iterable[int] | np.ndarray) -> "GenotypeDataset":
        """New dataset containing only the given SNP column indices (in the given order).

        Contiguous ascending runs are taken as a basic column slice — a
        *view* sharing the parent's memory — so locus windows carved out of a
        chromosome-scale panel (:func:`shard_dataset`) cost no genotype
        copies, mirroring what :meth:`select_individuals` does for rows.
        """
        idx = np.asarray(list(indices), dtype=np.intp)
        if idx.size and (idx.min() < 0 or idx.max() >= self.n_snps):
            raise IndexError(f"SNP index out of range [0, {self.n_snps})")
        packed = None
        if idx.size and np.array_equal(idx, np.arange(idx[0], idx[0] + idx.size)):
            columns = slice(int(idx[0]), int(idx[0]) + idx.size)
            if self._packed is not None:
                packed = self._packed.column_window(columns.start, columns.stop)
            genotypes = self._genotypes[:, columns] if self._genotypes is not None else None
        else:
            if self._packed is not None:
                # SNP-major packed rows gather cheaply: (k, width) bytes
                packed = PackedPanel(
                    np.ascontiguousarray(self._packed.data[idx]),
                    self._packed.n_individuals,
                    self._packed.row_start,
                )
            genotypes = self._genotypes[:, idx] if self._genotypes is not None else None
        return GenotypeDataset(
            genotypes,
            self._status,
            snp_names=[self._snp_names[i] for i in idx],
            individual_ids=self._individual_ids,
            packed=packed,
        )

    def window(self, start: int, stop: int) -> "GenotypeDataset":
        """Zero-copy view of the contiguous locus window ``[start, stop)``."""
        if not 0 <= start < stop <= self.n_snps:
            raise IndexError(
                f"window [{start}, {stop}) out of range for {self.n_snps} SNPs"
            )
        return self.select_snps(range(start, stop))

    def genotypes_at(self, snp_indices: Sequence[int] | np.ndarray) -> np.ndarray:
        """Genotype columns for the given SNP indices, shape ``(n_individuals, k)``."""
        idx = np.asarray(snp_indices, dtype=np.intp)
        if self._genotypes is None:
            return self._packed.unpack_columns(idx)
        return self._genotypes[:, idx]

    def snp_index(self, name: str) -> int:
        """Index of the SNP with the given name."""
        try:
            return self._snp_names.index(name)
        except ValueError:
            raise KeyError(f"unknown SNP name {name!r}") from None

    # ------------------------------------------------------------------ #
    # statistics
    # ------------------------------------------------------------------ #
    @property
    def missing_rate(self) -> float:
        """Fraction of genotype entries that are missing."""
        size = self.n_individuals * self.n_snps
        if size == 0:
            return 0.0
        if self._genotypes is None:
            # popcount kernel over the packed bytes; the count is an exact
            # integer either way, so the two paths divide identically.
            n_missing = int(self._packed.missing_counts().sum())
        else:
            n_missing = int(np.count_nonzero(self._genotypes == GENOTYPE_MISSING))
        return float(n_missing) / size

    def summary(self) -> DatasetSummary:
        """Return a :class:`DatasetSummary` of this dataset."""
        return DatasetSummary(
            n_individuals=self.n_individuals,
            n_snps=self.n_snps,
            n_affected=self.n_affected,
            n_unaffected=self.n_unaffected,
            n_unknown=self.n_unknown,
            missing_rate=self.missing_rate,
        )

    def copy(self) -> "GenotypeDataset":
        """Deep copy of the dataset (preserves the storage representation)."""
        packed = None
        if self._packed is not None:
            packed = PackedPanel(
                self._packed.data.copy(),
                self._packed.n_individuals,
                self._packed.row_start,
            )
        return GenotypeDataset(
            self._genotypes.copy() if self._genotypes is not None else None,
            self._status.copy(),
            snp_names=self._snp_names,
            individual_ids=self._individual_ids,
            packed=packed,
        )


# --------------------------------------------------------------------------- #
# packed substrate: affected-first 2-bit panels
# --------------------------------------------------------------------------- #
class PackedGenotypeStore:
    """A dataset re-packed 2-bit, affected-first, behind one panel buffer.

    Rows are laid out affected block first, unaffected block second and
    unknown-status individuals dropped — the exact order the shared-memory
    store uses — so :meth:`GenotypeDataset.affected` / ``unaffected`` of the
    produced dataset are bit-offset views into the same packed buffer, and
    locus windows are basic row slices of it.

    An already-packed source panel is reused as-is when its rows are already
    in that order, and re-ordered chunk-by-chunk otherwise (never
    materialising the full byte matrix); byte sources are packed directly.
    """

    def __init__(self, dataset: GenotypeDataset) -> None:
        order = np.concatenate(
            [np.flatnonzero(dataset.affected_mask), np.flatnonzero(dataset.unaffected_mask)]
        )
        if order.size == 0:
            raise ValueError("the dataset has no individuals with known status")
        identity = order.size == dataset.n_individuals and np.array_equal(
            order, np.arange(order.size)
        )
        source = dataset.packed
        if source is not None:
            panel = source if identity else source.reorder_individuals(order)
        elif identity:
            panel = PackedPanel(pack_genotypes(dataset.genotypes), order.size)
        else:
            panel = PackedPanel(pack_genotypes(dataset.genotypes[order]), order.size)
        self._panel = panel
        self._status = np.ascontiguousarray(dataset.status[order], dtype=np.int8)
        self._snp_names = dataset.snp_names
        self._individual_ids = tuple(dataset.individual_ids[i] for i in order)

    @property
    def panel(self) -> PackedPanel:
        return self._panel

    @property
    def n_bytes(self) -> int:
        """Size of the packed genotype payload in bytes."""
        return self._panel.n_bytes

    def dataset(self) -> GenotypeDataset:
        """The packed-native affected-first dataset over this store's panel."""
        return GenotypeDataset(
            None,
            self._status,
            snp_names=self._snp_names,
            individual_ids=self._individual_ids,
            packed=self._panel,
        )

    def window(self, start: int, stop: int) -> GenotypeDataset:
        """Packed-native dataset over the locus window ``[start, stop)``."""
        return GenotypeDataset(
            None,
            self._status,
            snp_names=self._snp_names[start:stop],
            individual_ids=self._individual_ids,
            packed=self._panel.column_window(start, stop),
        )


def as_packed_dataset(dataset: GenotypeDataset) -> GenotypeDataset:
    """``dataset`` in packed affected-first form (no-op when already there).

    The produced dataset is what the ``--packed`` execution paths run on: a
    packed panel whose affected/unaffected groups are contiguous row windows,
    so the whole evaluation pipeline stays on 2-bit storage.
    """
    if (
        dataset.packed is not None
        and dataset.n_unknown == 0
        and bool(np.all(dataset.status[: dataset.n_affected] == STATUS_AFFECTED))
    ):
        return dataset
    return PackedGenotypeStore(dataset).dataset()


# --------------------------------------------------------------------------- #
# locus windows: slicing a chromosome-scale panel into overlapping sub-panels
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class LocusWindow:
    """One contiguous locus window ``[start, stop)`` of a SNP panel.

    Windows are the unit of work of the genome-scale scan subsystem: each one
    is searched by an independent GA run over the window's sub-panel, and a
    haplotype found inside the window is reported in *global* panel indices
    (``start + local_index``).
    """

    index: int
    start: int
    stop: int

    def __post_init__(self) -> None:
        if self.index < 0:
            raise ValueError("window index must be non-negative")
        if not 0 <= self.start < self.stop:
            raise ValueError(f"invalid window bounds [{self.start}, {self.stop})")

    @property
    def size(self) -> int:
        """Number of loci in the window."""
        return self.stop - self.start

    @property
    def snp_indices(self) -> tuple[int, ...]:
        """Global panel indices covered by the window, in order."""
        return tuple(range(self.start, self.stop))

    def to_global(self, local_snps: Sequence[int]) -> tuple[int, ...]:
        """Translate window-local SNP indices to global panel indices."""
        out = []
        for snp in local_snps:
            snp = int(snp)
            if not 0 <= snp < self.size:
                raise IndexError(f"local SNP index {snp} outside window of size {self.size}")
            out.append(self.start + snp)
        return tuple(out)

    def span(self) -> str:
        """Human-readable ``start..stop-1`` locus span."""
        return f"{self.start}..{self.stop - 1}"


@dataclass(frozen=True)
class WindowPlan:
    """A tiling of an ``n_snps`` panel into overlapping locus windows.

    Built by :func:`plan_windows`; consumed by :func:`shard_dataset`, the
    sharded shared-memory store and the scan planner.  The plan guarantees
    full coverage: every locus belongs to at least one window, consecutive
    windows overlap by ``overlap`` loci (the final window may overlap more —
    it is anchored to the end of the panel rather than truncated).
    """

    n_snps: int
    window_size: int
    overlap: int
    windows: tuple[LocusWindow, ...]

    @property
    def n_windows(self) -> int:
        return len(self.windows)

    @property
    def stride(self) -> int:
        """Distance between consecutive window starts."""
        return self.window_size - self.overlap

    def __iter__(self):
        return iter(self.windows)

    def __len__(self) -> int:
        return self.n_windows

    def window_of(self, snp: int) -> tuple[LocusWindow, ...]:
        """Every window containing the given global SNP index."""
        if not 0 <= snp < self.n_snps:
            raise IndexError(f"SNP index {snp} out of range [0, {self.n_snps})")
        return tuple(w for w in self.windows if w.start <= snp < w.stop)


def plan_windows(n_snps: int, *, window_size: int, overlap: int = 0) -> WindowPlan:
    """Tile a panel of ``n_snps`` loci into overlapping windows.

    Windows start every ``window_size - overlap`` loci; the final window is
    anchored at ``n_snps - window_size`` so every window has exactly
    ``window_size`` loci and the panel is fully covered.
    """
    if n_snps < 1:
        raise ValueError("n_snps must be positive")
    if not 2 <= window_size <= n_snps:
        raise ValueError(
            f"window_size must be in [2, n_snps={n_snps}], got {window_size}"
        )
    if not 0 <= overlap < window_size:
        raise ValueError(
            f"overlap must be in [0, window_size), got {overlap} for window_size {window_size}"
        )
    stride = window_size - overlap
    starts = list(range(0, n_snps - window_size + 1, stride))
    if starts[-1] + window_size < n_snps:  # anchor a final window at the panel end
        starts.append(n_snps - window_size)
    windows = tuple(
        LocusWindow(index=i, start=start, stop=start + window_size)
        for i, start in enumerate(starts)
    )
    return WindowPlan(
        n_snps=n_snps, window_size=window_size, overlap=overlap, windows=windows
    )


def shard_dataset(
    dataset: GenotypeDataset, plan: WindowPlan
) -> tuple[GenotypeDataset, ...]:
    """Zero-copy window views of ``dataset``, one per window of ``plan``.

    Each returned dataset shares the parent's genotype buffer (basic column
    slicing — see :meth:`GenotypeDataset.select_snps`), so sharding a
    chromosome-scale panel into hundreds of windows costs no genotype copies.
    """
    if plan.n_snps != dataset.n_snps:
        raise ValueError(
            f"plan covers {plan.n_snps} SNPs but the dataset has {dataset.n_snps}"
        )
    return tuple(dataset.window(w.start, w.stop) for w in plan.windows)
