"""Benchmark: Table 2 — GA results on the 51-SNP dataset.

Reruns the paper's main experiment: repeated runs of the full adaptive
multi-population GA on the (simulated) 106 × 51 dataset, reporting per size
the best haplotype, its fitness, the mean fitness over runs, the deviation
from the reference optimum and the min / mean number of evaluations to reach
the solution — then prints the reproduced table next to the paper's reference
values.

At the default ``quick`` scale the GA uses a reduced configuration (smaller
population, shorter stagnation window, max size 5) so the benchmark finishes
in about a minute; set ``REPRO_BENCH_SCALE=paper`` for the full Section-5.2.1
configuration (population 150, stagnation 100, max size 6, 10 runs).
"""

from __future__ import annotations

import math

from repro.experiments.reporting import format_table
from repro.experiments.table2 import PAPER_TABLE2_REFERENCE, run_table2


def test_table2_ga_results(benchmark, study, ga_config, n_runs, scale):
    exhaustive_sizes = (2, 3) if scale == "paper" else (2,)
    result = benchmark.pedantic(
        run_table2,
        kwargs=dict(
            study=study,
            config=ga_config,
            n_runs=n_runs,
            exhaustive_reference_sizes=exhaustive_sizes,
        ),
        rounds=1,
        iterations=1,
    )

    # ---- shape checks mirroring the paper's claims -------------------- #
    fitnesses = [row.best_fitness for row in result.rows]
    assert fitnesses == sorted(fitnesses) or fitnesses[-1] > fitnesses[0], (
        "fitness must grow with the haplotype size"
    )
    # the GA explores a vanishing fraction of the search space (Table 1 vs Table 2)
    n_snps = study.dataset.n_snps
    searchable = sum(math.comb(n_snps, row.size) for row in result.rows)
    for run in result.run_results:
        assert run.n_evaluations < 0.25 * searchable
    # the exhaustive-reference sizes should be solved to (near) optimality
    for size in exhaustive_sizes:
        row = result.row(size)
        assert row.deviation <= 0.25 * row.reference_fitness

    # ---- report ------------------------------------------------------- #
    print()
    print(result.format())
    print()
    paper_rows = [
        [size, " ".join(map(str, ref["haplotype"])), ref["fitness"],
         ref["min_evals"], ref["mean_evals"]]
        for size, ref in sorted(PAPER_TABLE2_REFERENCE.items())
    ]
    print(
        format_table(
            ["Size", "Paper best haplotype", "Paper fitness", "Paper min # eval",
             "Paper mean # eval"],
            paper_rows,
            title="Paper Table 2 (original Lille dataset, for comparison)",
        )
    )
