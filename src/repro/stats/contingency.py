"""Contingency-table container and utilities.

CLUMP (Sham & Curtis, 1995) works on a ``2 × m`` contingency table whose rows
are the affected / unaffected groups and whose columns are haplotype states
(or alleles).  The evaluation pipeline of the paper (Figure 3) builds such a
table from the EH-DIALL estimated haplotype distributions of each group and
then asks CLUMP for the significance of the departure of the observed values
from the values expected under the marginal totals.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

__all__ = ["ContingencyTable"]


@dataclass(frozen=True)
class ContingencyTable:
    """A two-row (cases × categories) contingency table.

    Attributes
    ----------
    counts:
        ``(2, m)`` non-negative float array; row 0 is the affected group and
        row 1 the unaffected group.  Fractional counts are allowed because the
        haplotype counts come from an EM estimate (expected counts).
    column_labels:
        Optional labels for the ``m`` columns (haplotype strings such as
        ``"1221"``).
    """

    counts: np.ndarray
    column_labels: tuple[str, ...] | None = None

    def __post_init__(self) -> None:
        counts = np.asarray(self.counts, dtype=np.float64)
        if counts.ndim != 2 or counts.shape[0] != 2:
            raise ValueError(f"contingency table must have shape (2, m); got {counts.shape}")
        if counts.shape[1] < 1:
            raise ValueError("contingency table needs at least one column")
        if np.any(counts < 0) or not np.all(np.isfinite(counts)):
            raise ValueError("contingency table entries must be finite and non-negative")
        object.__setattr__(self, "counts", counts)
        if self.column_labels is not None and len(self.column_labels) != counts.shape[1]:
            raise ValueError("column_labels length must match the number of columns")

    # ------------------------------------------------------------------ #
    @classmethod
    def from_rows(
        cls,
        affected: Sequence[float] | np.ndarray,
        unaffected: Sequence[float] | np.ndarray,
        column_labels: Sequence[str] | None = None,
    ) -> "ContingencyTable":
        """Build a table from the affected and unaffected count rows."""
        affected = np.asarray(affected, dtype=np.float64)
        unaffected = np.asarray(unaffected, dtype=np.float64)
        if affected.shape != unaffected.shape:
            raise ValueError("affected and unaffected rows must have the same length")
        labels = tuple(column_labels) if column_labels is not None else None
        return cls(np.vstack([affected, unaffected]), labels)

    # ------------------------------------------------------------------ #
    @property
    def n_columns(self) -> int:
        return self.counts.shape[1]

    @property
    def row_totals(self) -> np.ndarray:
        return self.counts.sum(axis=1)

    @property
    def column_totals(self) -> np.ndarray:
        return self.counts.sum(axis=0)

    @property
    def total(self) -> float:
        return float(self.counts.sum())

    def expected(self) -> np.ndarray:
        """Expected counts conditional on the marginal totals."""
        total = self.total
        if total <= 0:
            raise ValueError("cannot compute expected counts of an empty table")
        return np.outer(self.row_totals, self.column_totals) / total

    # ------------------------------------------------------------------ #
    def drop_empty_columns(self) -> "ContingencyTable":
        """Remove columns whose total count is zero."""
        keep = self.column_totals > 0
        if keep.all():
            return self
        if not keep.any():
            raise ValueError("all columns are empty")
        labels = None
        if self.column_labels is not None:
            labels = tuple(lbl for lbl, k in zip(self.column_labels, keep) if k)
        return ContingencyTable(self.counts[:, keep], labels)

    def clump_rare_columns(self, min_expected: float = 5.0) -> "ContingencyTable":
        """Merge columns with small expected counts into a single "rare" column.

        This is the preprocessing step of CLUMP's T2 statistic: every column
        whose *expected* count (in either row) falls below ``min_expected`` is
        pooled into one clumped column, which stabilises the chi-square
        approximation for sparse haplotype tables.
        """
        table = self.drop_empty_columns()
        expected = table.expected()
        rare = (expected < min_expected).any(axis=0)
        if rare.sum() <= 1:
            return table
        keep = ~rare
        merged = table.counts[:, rare].sum(axis=1, keepdims=True)
        counts = np.hstack([table.counts[:, keep], merged])
        labels = None
        if table.column_labels is not None:
            kept = [lbl for lbl, k in zip(table.column_labels, keep) if k]
            labels = tuple(kept + ["rare"])
        return ContingencyTable(counts, labels)

    def collapse_to_two_columns(self, column_mask: np.ndarray) -> "ContingencyTable":
        """Collapse the table to 2×2 by pooling masked columns vs the rest."""
        mask = np.asarray(column_mask, dtype=bool)
        if mask.shape != (self.n_columns,):
            raise ValueError("column_mask must have one entry per column")
        if not mask.any() or mask.all():
            raise ValueError("column_mask must select a proper, non-empty subset of columns")
        left = self.counts[:, mask].sum(axis=1, keepdims=True)
        right = self.counts[:, ~mask].sum(axis=1, keepdims=True)
        return ContingencyTable(np.hstack([left, right]), ("selected", "rest"))

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        header = self.column_labels or tuple(f"c{i}" for i in range(self.n_columns))
        lines = ["\t" + "\t".join(header)]
        for name, row in zip(("affected", "unaffected"), self.counts):
            lines.append(name + "\t" + "\t".join(f"{v:.2f}" for v in row))
        return "\n".join(lines)
