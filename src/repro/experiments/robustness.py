"""Robustness of the GA across repeated executions (paper Section 5.2).

On the larger 249-SNP dataset the paper reports that the algorithm "has shown
a good robustness (solutions provided are similar from one execution to
another)".  This harness quantifies that claim: it runs the GA several times
with different seeds and reports, per haplotype size,

* the mean pairwise Jaccard similarity of the best haplotypes found by the
  different runs (1.0 = every run returns the same SNP set), and
* the coefficient of variation of the best fitness across runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Sequence

import numpy as np

from ..core.config import GAConfig
from ..core.history import GAResult
from ..genetics.constraints import HaplotypeConstraints
from ..genetics.simulate import SimulatedStudy
from ..runtime.service import RunRequest, RunScheduler
from .datasets import DEFAULT_SEED, lille51
from .reporting import format_table
from .table2 import quick_config

__all__ = ["RobustnessResult", "run_robustness", "jaccard_similarity"]


def jaccard_similarity(a: Sequence[int], b: Sequence[int]) -> float:
    """Jaccard similarity of two SNP sets (1.0 when identical, 0.0 when disjoint)."""
    set_a, set_b = set(a), set(b)
    if not set_a and not set_b:
        return 1.0
    return len(set_a & set_b) / len(set_a | set_b)


@dataclass(frozen=True)
class RobustnessResult:
    """Cross-run similarity of the GA's solutions.

    Attributes
    ----------
    similarity_per_size:
        Mean pairwise Jaccard similarity of the best haplotype per size.
    fitness_cv_per_size:
        Coefficient of variation (std / mean) of the best fitness per size.
    best_per_size_per_run:
        The raw per-run best haplotypes (size -> list over runs).
    n_runs:
        Number of GA runs.
    """

    similarity_per_size: dict[int, float]
    fitness_cv_per_size: dict[int, float]
    best_per_size_per_run: dict[int, tuple[tuple[int, ...], ...]]
    n_runs: int
    run_results: tuple[GAResult, ...]

    def mean_similarity(self) -> float:
        """Mean of the per-size similarities (the headline robustness score)."""
        return float(np.mean(list(self.similarity_per_size.values())))

    def format(self) -> str:
        headers = ["Size", "mean Jaccard similarity", "fitness CV"]
        rows = [
            [size, self.similarity_per_size[size], self.fitness_cv_per_size[size]]
            for size in sorted(self.similarity_per_size)
        ]
        return format_table(
            headers, rows,
            title=f"Robustness over {self.n_runs} runs (1.0 = identical solutions)",
        )


def run_robustness(
    *,
    study: SimulatedStudy | None = None,
    config: GAConfig | None = None,
    n_runs: int = 5,
    constraints: HaplotypeConstraints | None = None,
    seed: int = DEFAULT_SEED,
    statistic: str = "t1",
    backend: str = "serial",
    n_workers: int | None = None,
    chunk_size: int | None = None,
) -> RobustnessResult:
    """Run the GA ``n_runs`` times and measure the similarity of its solutions.

    All runs share one persistent :class:`~repro.runtime.service.RunScheduler`
    substrate (one farm spin-up for the whole study on the parallel
    backends); run ``i`` keeps its historical seed ``seed + 1000 * i``, so
    results are identical to the pre-scheduler harness on every backend.
    """
    if n_runs < 2:
        raise ValueError("robustness needs at least two runs")
    study = study or lille51(seed)
    config = config or quick_config()
    n_snps = study.dataset.n_snps
    constraints = constraints or HaplotypeConstraints.unconstrained(n_snps)

    results: list[GAResult] = []
    with RunScheduler(
        study.dataset,
        statistic=statistic,
        backend=backend,
        n_workers=n_workers,
        chunk_size=chunk_size,
    ) as scheduler:
        requests = [
            RunRequest(
                config=config,
                seed=seed + 1000 * run_index,
                statistic=statistic,
                constraints=constraints,
            )
            for run_index in range(n_runs)
        ]
        for run in scheduler.map(requests):
            results.append(run.result)

    sizes = sorted({size for result in results for size in result.best_per_size})
    similarity: dict[int, float] = {}
    fitness_cv: dict[int, float] = {}
    per_run: dict[int, tuple[tuple[int, ...], ...]] = {}
    for size in sizes:
        haplotypes = [
            result.best_per_size[size].snps
            for result in results
            if size in result.best_per_size
        ]
        fitnesses = np.asarray(
            [
                result.best_per_size[size].fitness_value()
                for result in results
                if size in result.best_per_size
            ]
        )
        per_run[size] = tuple(haplotypes)
        if len(haplotypes) >= 2:
            pairs = list(combinations(haplotypes, 2))
            similarity[size] = float(np.mean([jaccard_similarity(a, b) for a, b in pairs]))
        else:
            similarity[size] = 1.0
        mean = fitnesses.mean()
        fitness_cv[size] = float(fitnesses.std() / mean) if mean > 0 else 0.0
    return RobustnessResult(
        similarity_per_size=similarity,
        fitness_cv_per_size=fitness_cv,
        best_per_size_per_run=per_run,
        n_runs=n_runs,
        run_results=tuple(results),
    )
