"""Tests of the Figure-4 harness (evaluation time vs haplotype size)."""

import pytest

from repro.experiments.figure4 import PAPER_FIGURE4_REFERENCE, run_figure4


class TestFigure4:
    @pytest.fixture(scope="class")
    def result(self, request):
        small_study = request.getfixturevalue("small_study")
        return run_figure4(study=small_study, sizes=(2, 3, 4, 5), n_samples=4, seed=1)

    def test_one_point_per_size(self, result):
        assert [p.size for p in result.points] == [2, 3, 4, 5]
        assert all(p.n_samples == 4 for p in result.points)
        assert all(p.mean_seconds > 0 for p in result.points)
        assert all(p.std_seconds >= 0 for p in result.points)

    def test_cost_grows_with_size(self, result):
        """The reproduced quantity: evaluation cost increases with haplotype size."""
        means = [p.mean_seconds for p in result.points]
        assert means[-1] > means[0]
        assert result.growth_factor > 1.0

    def test_accessor_and_format(self, result):
        assert result.mean_seconds(3) == result.points[1].mean_seconds
        with pytest.raises(KeyError):
            result.mean_seconds(9)
        text = result.format()
        assert "Figure 4" in text
        assert "growth factor" in text

    def test_validation(self, small_study):
        with pytest.raises(ValueError):
            run_figure4(study=small_study, sizes=(2, 3), n_samples=1)
        with pytest.raises(ValueError):
            run_figure4(study=small_study, sizes=(99,), n_samples=3)

    def test_paper_reference_shape(self):
        """The paper's own numbers imply an exponential growth factor above 2."""
        ratio = PAPER_FIGURE4_REFERENCE[7] / PAPER_FIGURE4_REFERENCE[3]
        per_snp = ratio ** (1 / 4)
        assert per_snp > 2.0
