"""Random-sampling baseline.

The simplest possible use of the same evaluation budget as the GA: draw
constraint-satisfying haplotypes uniformly at random (spread over the same
size range) and keep the best seen per size.  The comparison against this
baseline quantifies how much of the GA's performance comes from its search
mechanisms rather than from the sheer number of evaluations.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.individual import random_individual
from ..genetics.constraints import HaplotypeConstraints
from ..parallel.base import FitnessCallable

__all__ = ["RandomSearchResult", "random_search"]


@dataclass(frozen=True)
class RandomSearchResult:
    """Best haplotype per size found by random sampling.

    Attributes
    ----------
    best_per_size:
        ``{size: (snps, fitness)}`` of the best haplotype sampled per size.
    evaluations_to_best:
        Evaluation index at which each size's best was found.
    n_evaluations:
        Total number of evaluations used.
    """

    best_per_size: dict[int, tuple[tuple[int, ...], float]]
    evaluations_to_best: dict[int, int]
    n_evaluations: int

    def best_fitness(self, size: int) -> float:
        return self.best_per_size[size][1]


def random_search(
    fitness: FitnessCallable,
    *,
    n_snps: int,
    n_evaluations: int,
    min_size: int = 2,
    max_size: int = 6,
    constraints: HaplotypeConstraints | None = None,
    seed: int = 0,
) -> RandomSearchResult:
    """Uniform random search over the same size range as the GA.

    Haplotype sizes are sampled uniformly from ``[min_size, max_size]``;
    within a size the haplotype is drawn by the same constrained construction
    the GA uses for its random individuals.
    """
    if n_evaluations < 1:
        raise ValueError("n_evaluations must be positive")
    if min_size > max_size:
        raise ValueError("min_size must not exceed max_size")
    constraints = constraints or HaplotypeConstraints.unconstrained(n_snps)
    rng = np.random.default_rng(seed)
    best: dict[int, tuple[tuple[int, ...], float]] = {}
    found_at: dict[int, int] = {}
    for evaluation in range(1, n_evaluations + 1):
        size = int(rng.integers(min_size, max_size + 1))
        individual = random_individual(size, constraints, rng)
        value = float(fitness(individual.snps))
        current = best.get(size)
        if current is None or value > current[1]:
            best[size] = (individual.snps, value)
            found_at[size] = evaluation
    return RandomSearchResult(
        best_per_size=best,
        evaluations_to_best=found_at,
        n_evaluations=n_evaluations,
    )
