"""The three mutation operators of the paper (Section 4.3.1).

* **Point (SNP) mutation** — replace one randomly chosen SNP of the haplotype
  by another randomly chosen SNP.  The paper applies this mutation "several
  times in parallel" and keeps the best resulting individual, which makes it
  behave like a small local search around the parent; accordingly
  :class:`PointMutation` proposes ``n_trials`` candidates and the engine keeps
  the fittest.
* **Reduction mutation** — remove one randomly chosen SNP.  The child is one
  SNP shorter, so it migrates to the next smaller sub-population; this is one
  of the cooperation mechanisms between sub-populations.
* **Augmentation mutation** — add one randomly chosen (constraint-compatible)
  SNP, migrating the child to the next larger sub-population.
"""

from __future__ import annotations

import numpy as np

from ...genetics.constraints import HaplotypeConstraints
from ..individual import HaplotypeIndividual
from .base import MutationOperator, SnpTuple

__all__ = ["PointMutation", "ReductionMutation", "AugmentationMutation"]


class PointMutation(MutationOperator):
    """Replace one SNP of the haplotype by another, ``n_trials`` times."""

    name = "point_mutation"

    def __init__(self, n_trials: int = 4) -> None:
        if n_trials < 1:
            raise ValueError("n_trials must be at least 1")
        self.n_trials = int(n_trials)

    def is_applicable(self, parent: HaplotypeIndividual) -> bool:
        return parent.size >= 1

    def propose(
        self,
        parent: HaplotypeIndividual,
        constraints: HaplotypeConstraints,
        rng: np.random.Generator,
    ) -> list[SnpTuple]:
        candidates: list[SnpTuple] = []
        seen: set[SnpTuple] = {parent.snps}
        for _ in range(self.n_trials):
            position = int(rng.integers(parent.size))
            remaining = [s for i, s in enumerate(parent.snps) if i != position]
            compatible = constraints.compatible_snps(remaining)
            # never re-insert the SNP we just removed (that would be a no-op)
            compatible = compatible[compatible != parent.snps[position]]
            if compatible.size == 0:
                continue
            replacement = int(rng.choice(compatible))
            candidate = tuple(sorted(remaining + [replacement]))
            if candidate not in seen:
                seen.add(candidate)
                candidates.append(candidate)
        return candidates


class ReductionMutation(MutationOperator):
    """Remove one randomly chosen SNP (moves the child one sub-population down)."""

    name = "reduction_mutation"

    def __init__(self, min_size: int = 2) -> None:
        if min_size < 1:
            raise ValueError("min_size must be at least 1")
        self.min_size = int(min_size)

    def is_applicable(self, parent: HaplotypeIndividual) -> bool:
        return parent.size > self.min_size

    def propose(
        self,
        parent: HaplotypeIndividual,
        constraints: HaplotypeConstraints,
        rng: np.random.Generator,
    ) -> list[SnpTuple]:
        if not self.is_applicable(parent):
            return []
        position = int(rng.integers(parent.size))
        child = tuple(s for i, s in enumerate(parent.snps) if i != position)
        return [child]


class AugmentationMutation(MutationOperator):
    """Add one randomly chosen compatible SNP (moves the child one sub-population up)."""

    name = "augmentation_mutation"

    def __init__(self, max_size: int = 6) -> None:
        if max_size < 1:
            raise ValueError("max_size must be at least 1")
        self.max_size = int(max_size)

    def is_applicable(self, parent: HaplotypeIndividual) -> bool:
        return parent.size < self.max_size

    def propose(
        self,
        parent: HaplotypeIndividual,
        constraints: HaplotypeConstraints,
        rng: np.random.Generator,
    ) -> list[SnpTuple]:
        if not self.is_applicable(parent):
            return []
        compatible = constraints.compatible_snps(parent.snps)
        if compatible.size == 0:
            return []
        addition = int(rng.choice(compatible))
        child = tuple(sorted(parent.snps + (addition,)))
        return [child]
