"""Common interfaces of the parallel evaluation substrate.

The paper parallelises only the *evaluation phase* of the GA: at every
generation the master holds a batch of new individuals whose fitnesses are
unknown, farms them out to slaves, and waits for every result before
continuing (a synchronous master/slave organisation, Figure 6).  All the GA
needs from the substrate is therefore a single operation — "evaluate this
batch of haplotypes and give me their fitnesses in order" — which is captured
by the :class:`BatchEvaluator` protocol below.  Three implementations are
provided:

* :class:`~repro.parallel.serial.SerialEvaluator` — evaluate in-process;
* :class:`~repro.parallel.master_slave.MasterSlaveEvaluator` — a real
  ``multiprocessing`` worker farm;
* :class:`~repro.parallel.pvm.SimulatedPVM` — a deterministic model of the
  paper's PVM cluster used for reproducible speedup studies.

Batch fast path
---------------
Every evaluator deriving from :class:`BaseBatchEvaluator` shares a
generation-level fast path in :meth:`~BaseBatchEvaluator.evaluate_batch`:
identical individuals within a batch are collapsed to one evaluation, a
master-side fitness cache answers haplotypes seen in earlier generations, and
only the distinct, unseen remainder is handed to the backend's
:meth:`~BaseBatchEvaluator._evaluate_distinct` (the serial loop, the
multiprocessing scatter, ...).  Results are returned in original batch order,
and :class:`EvaluationStats` separates the number of fitness *requests* from
the number of evaluations actually performed — the paper's cost metric.

A haplotype is a *set* of SNPs (every fitness function in this codebase sorts
its input), so the dedup key is the sorted SNP tuple.  Both layers can be
switched off (``dedup=False``, ``cache_size=0``) — the speedup experiments
do, because a cache would turn their repeated timing batches into no-ops.
"""

from __future__ import annotations

import abc
import time
from dataclasses import dataclass
from typing import Callable, Protocol, Sequence, runtime_checkable

from ..lru import LRUCache

__all__ = [
    "SnpSet",
    "FitnessCallable",
    "BatchEvaluator",
    "EvaluationStats",
    "DistinctEvaluation",
    "evaluate_batch_with",
    "validate_worker_count",
    "validate_chunk_size",
    "default_mp_context",
]


def validate_worker_count(n_workers: "int | None") -> None:
    """Shared check for every parallel backend's ``n_workers`` parameter."""
    if n_workers is not None and (
        not isinstance(n_workers, int) or isinstance(n_workers, bool) or n_workers < 1
    ):
        raise ValueError(
            f"n_workers must be a positive integer (the number of workers), "
            f"got {n_workers!r}"
        )


def validate_chunk_size(chunk_size: "int | None") -> None:
    """Shared check for every parallel backend's ``chunk_size`` parameter."""
    if chunk_size is not None and (
        not isinstance(chunk_size, int) or isinstance(chunk_size, bool) or chunk_size < 1
    ):
        raise ValueError(
            f"chunk_size must be a positive integer or None, got {chunk_size!r}"
        )


def default_mp_context(start_method: "str | None" = None):
    """The multiprocessing context every process backend starts workers from.

    ``fork`` (when available) avoids re-importing the scientific stack in
    every worker; platforms without it fall back to ``spawn``.
    """
    from multiprocessing import get_context

    if start_method is not None:
        return get_context(start_method)
    try:
        return get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return get_context("spawn")

#: A candidate haplotype: a sequence of SNP indices.
SnpSet = Sequence[int]

#: Any callable mapping a SNP set to a scalar fitness.
FitnessCallable = Callable[[SnpSet], float]


def _key(snps: SnpSet) -> tuple[int, ...]:
    return tuple(sorted(int(s) for s in snps))


def evaluate_batch_with(
    fitness: FitnessCallable, batch: Sequence[SnpSet]
) -> tuple[list[float], int, int]:
    """Evaluate a distinct batch through the fitness function's batched path.

    Fitness functions exposing ``evaluate_many`` (the
    :class:`~repro.stats.evaluation.HaplotypeEvaluator` stacked-EM fast path)
    get the whole batch in one call — results are bit-identical to the
    per-candidate loop, only the dispatch changes; everything else falls back
    to that loop.  Returns ``(values, n_stacked_em, n_stacked_problems)``
    where the counter deltas report the stacked kernel work the call caused
    (0 for plain callables).

    This is the single routing point the serial evaluator, the thread pool's
    worker chunks and the farm slaves' chunk fast path all share.
    """
    evaluate_many = getattr(fitness, "evaluate_many", None)
    if evaluate_many is None or len(batch) < 2:
        return [float(fitness(snps)) for snps in batch], 0, 0
    calls_before = getattr(fitness, "n_stacked_em", 0)
    problems_before = getattr(fitness, "n_stacked_problems", 0)
    values = [float(value) for value in evaluate_many(batch)]
    return (
        values,
        getattr(fitness, "n_stacked_em", 0) - calls_before,
        getattr(fitness, "n_stacked_problems", 0) - problems_before,
    )


@dataclass(frozen=True)
class DistinctEvaluation:
    """Outcome of one backend call on a batch of distinct, unseen haplotypes.

    Plain backends only fill :attr:`values`; backends whose workers run their
    own batch fast path (chunked dispatch) additionally report how much work
    the workers *actually* performed, so the master-side
    :class:`EvaluationStats` merge exactly what happened instead of assuming
    one evaluation per dispatched haplotype.

    Attributes
    ----------
    values:
        Fitnesses in dispatch order.
    n_evaluations:
        Evaluations the backend really performed (``None`` means one per
        value, the plain-backend default).
    n_cache_hits:
        Haplotypes answered from worker-side caches instead of being
        re-evaluated.
    backend_seconds:
        Summed worker-side evaluation time (0 when the backend does not
        measure it); on a real cluster this exceeds the wall-clock batch time
        whenever workers overlap.
    n_stacked_em:
        Stacked multi-candidate EM kernel calls the backend performed.
    n_stacked_problems:
        EM problems answered by those stacked calls (their ratio is the mean
        stacked batch occupancy).
    n_worker_deaths / n_chunks_replayed / n_worker_respawns:
        Recovery events the backend survived while evaluating this batch
        (self-healing farm only; 0 everywhere else).
    """

    values: list[float]
    n_evaluations: int | None = None
    n_cache_hits: int = 0
    backend_seconds: float = 0.0
    n_stacked_em: int = 0
    n_stacked_problems: int = 0
    n_worker_deaths: int = 0
    n_chunks_replayed: int = 0
    n_worker_respawns: int = 0


@dataclass
class EvaluationStats:
    """Running counters kept by every batch evaluator.

    Attributes
    ----------
    n_evaluations:
        Number of haplotype evaluations actually performed by the backend
        (distinct, unseen individuals).
    n_requests:
        Number of fitness requests submitted through ``evaluate_batch``;
        ``n_requests - n_evaluations`` is the work saved by the batch fast
        path.
    n_batches:
        Number of batches submitted.
    n_dedup_hits:
        Requests answered by collapsing duplicates within their batch.
    n_cache_hits:
        Requests answered by a fitness cache (master-side or, for chunked
        backends, a worker-side one).
    total_seconds:
        Wall-clock time spent inside ``evaluate_batch`` calls.
    backend_seconds:
        Summed worker-side evaluation time reported by the backend (0 for
        backends that do not measure it).
    n_stacked_em:
        Stacked multi-candidate EM kernel calls performed by the evaluation
        layer (0 for fitness functions without a batched path).
    n_stacked_problems:
        EM problems answered by those stacked calls;
        ``n_stacked_problems / n_stacked_em`` is the mean stacked batch
        occupancy.  Like the timings — and unlike the request/evaluation
        counters — these depend on how work was chunked across workers, so
        they are excluded from :meth:`counters` (the cross-backend parity
        contract).
    n_worker_deaths:
        Slave processes lost (died or reaped as hung) and survived via a
        :class:`~repro.parallel.farm.FarmRecoveryPolicy`.
    n_chunks_replayed:
        Lost in-flight chunks replayed bit-identically on surviving slaves.
    n_worker_respawns:
        Dead slaves restarted in place.  All three recovery counters describe
        *infrastructure* events, not evaluation work — a faulty run performs
        exactly the same requests/evaluations as a fault-free one — so, like
        the stacked-EM counters, they are excluded from :meth:`counters`.
    n_result_cache_hits:
        Whole window/run *results* replayed from a cross-request result cache
        (the scan service's daemon layer) instead of being recomputed.  A
        replayed result performs zero evaluations here, so — like the
        recovery counters — this is a service-layer account excluded from
        :meth:`counters` (a served scan with a warm cache must still
        fingerprint-match a cold one).
    """

    n_evaluations: int = 0
    n_requests: int = 0
    n_batches: int = 0
    n_dedup_hits: int = 0
    n_cache_hits: int = 0
    total_seconds: float = 0.0
    backend_seconds: float = 0.0
    n_stacked_em: int = 0
    n_stacked_problems: int = 0
    n_worker_deaths: int = 0
    n_chunks_replayed: int = 0
    n_worker_respawns: int = 0
    n_result_cache_hits: int = 0

    def record_batch(
        self,
        batch_size: int,
        elapsed: float,
        *,
        n_requests: int | None = None,
        n_dedup_hits: int = 0,
        n_cache_hits: int = 0,
        backend_seconds: float = 0.0,
        n_stacked_em: int = 0,
        n_stacked_problems: int = 0,
        n_worker_deaths: int = 0,
        n_chunks_replayed: int = 0,
        n_worker_respawns: int = 0,
    ) -> None:
        self.n_evaluations += batch_size
        self.n_requests += batch_size if n_requests is None else n_requests
        self.n_batches += 1
        self.n_dedup_hits += n_dedup_hits
        self.n_cache_hits += n_cache_hits
        self.total_seconds += elapsed
        self.backend_seconds += backend_seconds
        self.n_stacked_em += n_stacked_em
        self.n_stacked_problems += n_stacked_problems
        self.n_worker_deaths += n_worker_deaths
        self.n_chunks_replayed += n_chunks_replayed
        self.n_worker_respawns += n_worker_respawns

    def counters(self) -> dict[str, int]:
        """The integer counters as a dict (timings, stacked-EM and recovery
        counters excluded) — the part of the stats that must agree exactly
        between backends on the same workload."""
        return {
            "n_requests": self.n_requests,
            "n_evaluations": self.n_evaluations,
            "n_batches": self.n_batches,
            "n_dedup_hits": self.n_dedup_hits,
            "n_cache_hits": self.n_cache_hits,
        }

    def copy(self) -> "EvaluationStats":
        """Snapshot of the current counters."""
        return EvaluationStats(**self.__dict__)

    def merge(self, other: "EvaluationStats") -> None:
        """Accumulate another stats object's counters into this one (in place).

        Used by the run scheduler to fold the per-batch deltas of one job into
        that job's own stats while many jobs share a single backend evaluator.
        """
        self.n_evaluations += other.n_evaluations
        self.n_requests += other.n_requests
        self.n_batches += other.n_batches
        self.n_dedup_hits += other.n_dedup_hits
        self.n_cache_hits += other.n_cache_hits
        self.total_seconds += other.total_seconds
        self.backend_seconds += other.backend_seconds
        self.n_stacked_em += other.n_stacked_em
        self.n_stacked_problems += other.n_stacked_problems
        self.n_worker_deaths += other.n_worker_deaths
        self.n_chunks_replayed += other.n_chunks_replayed
        self.n_worker_respawns += other.n_worker_respawns
        self.n_result_cache_hits += other.n_result_cache_hits

    def since(self, snapshot: "EvaluationStats") -> "EvaluationStats":
        """Stats accumulated after ``snapshot`` was taken (field-wise difference)."""
        return EvaluationStats(
            n_evaluations=self.n_evaluations - snapshot.n_evaluations,
            n_requests=self.n_requests - snapshot.n_requests,
            n_batches=self.n_batches - snapshot.n_batches,
            n_dedup_hits=self.n_dedup_hits - snapshot.n_dedup_hits,
            n_cache_hits=self.n_cache_hits - snapshot.n_cache_hits,
            total_seconds=self.total_seconds - snapshot.total_seconds,
            backend_seconds=self.backend_seconds - snapshot.backend_seconds,
            n_stacked_em=self.n_stacked_em - snapshot.n_stacked_em,
            n_stacked_problems=self.n_stacked_problems - snapshot.n_stacked_problems,
            n_worker_deaths=self.n_worker_deaths - snapshot.n_worker_deaths,
            n_chunks_replayed=self.n_chunks_replayed - snapshot.n_chunks_replayed,
            n_worker_respawns=self.n_worker_respawns - snapshot.n_worker_respawns,
            n_result_cache_hits=self.n_result_cache_hits - snapshot.n_result_cache_hits,
        )

    @property
    def mean_stacked_batch_size(self) -> float:
        """Mean problems per stacked EM kernel call (0 when none were made)."""
        if self.n_stacked_em == 0:
            return 0.0
        return self.n_stacked_problems / self.n_stacked_em

    @property
    def n_distinct_evaluations(self) -> int:
        """Alias for :attr:`n_evaluations` (evaluations actually performed)."""
        return self.n_evaluations

    @property
    def reuse_rate(self) -> float:
        """Fraction of requests answered without evaluating (dedup + cache)."""
        if self.n_requests == 0:
            return 0.0
        return 1.0 - self.n_evaluations / self.n_requests

    @property
    def mean_seconds_per_evaluation(self) -> float:
        """Amortised wall-clock per *performed* evaluation.

        ``total_seconds`` includes the full ``evaluate_batch`` time — cache
        lookups and batches served entirely from reuse included — so with a
        high reuse rate this reads higher than the backend's raw per-call
        cost; see :attr:`mean_seconds_per_request` for time per request.
        """
        return 0.0 if self.n_evaluations == 0 else self.total_seconds / self.n_evaluations

    @property
    def mean_seconds_per_request(self) -> float:
        """Wall-clock per fitness request (reuse hits included)."""
        return 0.0 if self.n_requests == 0 else self.total_seconds / self.n_requests


@runtime_checkable
class BatchEvaluator(Protocol):
    """Protocol implemented by every evaluation backend."""

    def evaluate_batch(self, batch: Sequence[SnpSet]) -> list[float]:
        """Evaluate a batch of haplotypes, returning fitnesses in batch order."""
        ...

    def evaluate(self, snps: SnpSet) -> float:
        """Evaluate a single haplotype."""
        ...

    @property
    def stats(self) -> EvaluationStats:
        """Running evaluation counters."""
        ...

    def close(self) -> None:
        """Release any resources (worker processes); idempotent."""
        ...


class BaseBatchEvaluator(abc.ABC):
    """Shared bookkeeping and batch fast path for concrete evaluators.

    Parameters
    ----------
    dedup:
        Collapse identical individuals within a batch to a single backend
        evaluation (results are fanned back out in order).
    cache_size:
        Bound on the master-side fitness cache consulted before scattering
        (LRU eviction).  Default 4096 entries (a few hundred KB of float
        values — bounded like every other cache layer in the codebase);
        ``None`` means unbounded, ``0`` disables the cache.
    """

    DEFAULT_CACHE_SIZE = 4096

    def __init__(self, *, dedup: bool = True, cache_size: int | None = DEFAULT_CACHE_SIZE) -> None:
        if cache_size is not None and cache_size < 0:
            raise ValueError("cache_size must be non-negative or None")
        self._stats = EvaluationStats()
        self._dedup = bool(dedup)
        self._fitness_cache = LRUCache(cache_size)
        self._close_callbacks: list[Callable[[], None]] = []

    @property
    def stats(self) -> EvaluationStats:
        return self._stats

    @abc.abstractmethod
    def _evaluate_distinct(self, batch: Sequence[SnpSet]) -> list[float]:
        """Evaluate a batch of distinct, unseen haplotypes (backend hook)."""

    def _evaluate_distinct_details(self, batch: Sequence[SnpSet]) -> DistinctEvaluation:
        """Like :meth:`_evaluate_distinct` but with backend-side accounting.

        Backends whose workers run their own batch fast path override this to
        report the evaluations actually performed; plain backends inherit the
        one-evaluation-per-haplotype default.
        """
        return DistinctEvaluation(values=self._evaluate_distinct(batch))

    def evaluate_batch(self, batch: Sequence[SnpSet]) -> list[float]:
        start = time.perf_counter()
        batch = list(batch)
        n_requests = len(batch)
        if n_requests == 0:
            return []

        cache = self._fitness_cache
        results: list[float | None] = [None] * n_requests
        pending: list[SnpSet] = []
        pending_keys: list[tuple[int, ...]] = []
        first_seen: dict[tuple[int, ...], int] = {}
        resolve: list[tuple[int, int]] = []  # (batch position, pending index)
        n_cache_hits = 0
        n_dedup_hits = 0
        for position, snps in enumerate(batch):
            key = _key(snps)
            hit = cache.get(key)
            if hit is not None:
                results[position] = hit
                n_cache_hits += 1
                continue
            if self._dedup and key in first_seen:
                resolve.append((position, first_seen[key]))
                n_dedup_hits += 1
                continue
            index = len(pending)
            first_seen.setdefault(key, index)
            pending.append(snps)
            pending_keys.append(key)
            resolve.append((position, index))

        if pending:
            details = self._evaluate_distinct_details(pending)
        else:
            details = DistinctEvaluation(values=[])
        values = details.values
        for key, value in zip(pending_keys, values):
            cache.put(key, float(value))
        for position, index in resolve:
            results[position] = float(values[index])

        n_performed = (
            len(pending) if details.n_evaluations is None else details.n_evaluations
        )
        self._stats.record_batch(
            n_performed,
            time.perf_counter() - start,
            n_requests=n_requests,
            n_dedup_hits=n_dedup_hits,
            n_cache_hits=n_cache_hits + details.n_cache_hits,
            backend_seconds=details.backend_seconds,
            n_stacked_em=details.n_stacked_em,
            n_stacked_problems=details.n_stacked_problems,
            n_worker_deaths=details.n_worker_deaths,
            n_chunks_replayed=details.n_chunks_replayed,
            n_worker_respawns=details.n_worker_respawns,
        )
        return [float(r) for r in results]  # type: ignore[arg-type]

    def evaluate(self, snps: SnpSet) -> float:
        return self.evaluate_batch([snps])[0]

    def register_close_callback(self, callback: Callable[[], None]) -> None:
        """Register a cleanup hook run (once) when the evaluator is closed.

        Used by the backend layer to tie auxiliary resources — e.g. the
        shared-memory genotype store of the ``process-shm`` backend — to the
        evaluator's lifetime.
        """
        self._close_callbacks.append(callback)

    def _run_close_callbacks(self) -> None:
        callbacks, self._close_callbacks = self._close_callbacks, []
        for callback in callbacks:
            callback()

    def close(self) -> None:
        self._run_close_callbacks()

    def __enter__(self) -> "BaseBatchEvaluator":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
