"""Tests of the cross-run robustness harness (Section 5.2 claim)."""

import pytest

from repro.experiments.robustness import jaccard_similarity, run_robustness
from repro.experiments.table2 import quick_config


class TestJaccard:
    def test_identical_sets(self):
        assert jaccard_similarity((1, 2, 3), (3, 2, 1)) == pytest.approx(1.0)

    def test_disjoint_sets(self):
        assert jaccard_similarity((1, 2), (3, 4)) == pytest.approx(0.0)

    def test_partial_overlap(self):
        assert jaccard_similarity((1, 2, 3), (2, 3, 4)) == pytest.approx(2 / 4)

    def test_empty_sets(self):
        assert jaccard_similarity((), ()) == pytest.approx(1.0)


class TestRunRobustness:
    @pytest.fixture(scope="class")
    def result(self, request):
        small_study = request.getfixturevalue("small_study")
        config = quick_config(
            population_size=20, max_haplotype_size=3,
            termination_stagnation=4, max_generations=8,
        )
        return run_robustness(study=small_study, config=config, n_runs=3, seed=2)

    def test_structure(self, result):
        assert result.n_runs == 3
        assert len(result.run_results) == 3
        assert set(result.similarity_per_size) == {2, 3}
        for size, runs in result.best_per_size_per_run.items():
            assert len(runs) == 3
            assert all(len(h) == size for h in runs)

    def test_metrics_bounded(self, result):
        for similarity in result.similarity_per_size.values():
            assert 0.0 <= similarity <= 1.0
        for cv in result.fitness_cv_per_size.values():
            assert cv >= 0.0
        assert 0.0 <= result.mean_similarity() <= 1.0

    def test_runs_use_different_seeds(self, result):
        seeds = {run.config.seed for run in result.run_results}
        assert len(seeds) == 3

    def test_format(self, result):
        text = result.format()
        assert "Robustness" in text
        assert "Jaccard" in text

    def test_validation(self, small_study):
        with pytest.raises(ValueError):
            run_robustness(study=small_study, n_runs=1)
