"""Tests of the EH-DIALL procedure (H0/H1 likelihoods and LRT)."""

import numpy as np
import pytest

from repro.genetics.dataset import GenotypeDataset
from repro.stats.ehdiall import h0_frequencies, run_ehdiall


def _dataset_from_phased(h1, h2, status=None):
    genotypes = (np.asarray(h1) + np.asarray(h2)).astype(np.int8)
    if status is None:
        status = np.zeros(genotypes.shape[0], dtype=np.int8)
    return GenotypeDataset(genotypes, status)


class TestH0Frequencies:
    def test_independent_product(self):
        freqs = h0_frequencies(np.array([0.2, 0.5]))
        # states: 00, 10(bit0 set = allele2 at locus0), 01, 11
        np.testing.assert_allclose(
            freqs, [0.8 * 0.5, 0.2 * 0.5, 0.8 * 0.5, 0.2 * 0.5]
        )
        assert freqs.sum() == pytest.approx(1.0)

    def test_degenerate_frequencies(self):
        freqs = h0_frequencies(np.array([0.0, 1.0]))
        assert freqs[2] == pytest.approx(1.0)  # allele1 at locus0, allele2 at locus1
        assert freqs.sum() == pytest.approx(1.0)


class TestRunEHDiall:
    def test_requires_snps_with_dataset(self, small_dataset):
        with pytest.raises(ValueError):
            run_ehdiall(small_dataset)

    def test_h1_always_at_least_h0(self, small_dataset):
        result = run_ehdiall(small_dataset, (0, 1, 2))
        assert result.h1_log_likelihood >= result.h0_log_likelihood - 1e-9
        assert result.lrt_statistic >= 0.0
        assert 0.0 <= result.lrt_p_value <= 1.0

    def test_lrt_df(self, small_dataset):
        result = run_ehdiall(small_dataset, (0, 1, 2))
        assert result.lrt_df == (2**3 - 1) - 3

    def test_independent_loci_have_small_lrt(self, rng):
        h1 = (rng.random((200, 2)) < 0.5).astype(np.int8)
        h2 = (rng.random((200, 2)) < 0.5).astype(np.int8)
        dataset = _dataset_from_phased(h1, h2)
        result = run_ehdiall(dataset, (0, 1))
        # under independence the LRT is ~chi2(1): it should not be huge
        assert result.lrt_statistic < 12.0

    def test_strong_ld_detected(self, rng):
        # perfect LD: second locus copies the first
        a = (rng.random((200, 1)) < 0.4).astype(np.int8)
        h1 = np.hstack([a, a])
        b = (rng.random((200, 1)) < 0.4).astype(np.int8)
        h2 = np.hstack([b, b])
        dataset = _dataset_from_phased(h1, h2)
        result = run_ehdiall(dataset, (0, 1))
        assert result.lrt_statistic > 50.0
        assert result.lrt_p_value < 1e-6

    def test_expected_counts_scale_with_chromosomes(self, small_dataset):
        result = run_ehdiall(small_dataset.affected(), (0, 1))
        counts = result.expected_haplotype_counts()
        assert counts.sum() == pytest.approx(result.n_chromosomes)

    def test_accepts_plain_arrays(self, small_dataset):
        genotypes = small_dataset.genotypes_at((0, 1, 2))
        from_array = run_ehdiall(genotypes)
        from_dataset = run_ehdiall(small_dataset, (0, 1, 2))
        np.testing.assert_allclose(from_array.haplotype_frequencies,
                                   from_dataset.haplotype_frequencies)

    def test_allele_frequencies_estimated_from_complete_rows(self):
        genotypes = np.array([[0, 1], [2, -1], [1, 1]], dtype=np.int8)
        dataset = GenotypeDataset(genotypes, [1, 1, 0])
        result = run_ehdiall(dataset, (0, 1))
        # only rows 0 and 2 are complete -> allele-2 freq = (0+1)/4, (1+1)/4
        np.testing.assert_allclose(result.allele_frequencies, [0.25, 0.5])
