"""Tests of exhaustive enumeration and of the random / local-search baselines."""

import math

import numpy as np
import pytest

from repro.genetics.constraints import HaplotypeConstraints
from repro.search.exhaustive import enumerate_best, enumerate_haplotypes, evaluate_all
from repro.search.local_search import hill_climb, restarted_hill_climbing
from repro.search.random_search import random_search


def _toy_fitness(snps):
    """Deterministic toy fitness: rewards low SNP indices, best is always known."""
    return float(100.0 - sum(snps) + 5.0 * len(snps))


class TestEnumerate:
    def test_counts_match_binomial(self):
        combos = list(enumerate_haplotypes(8, 3))
        assert len(combos) == math.comb(8, 3)
        assert all(len(set(c)) == 3 for c in combos)
        assert all(c == tuple(sorted(c)) for c in combos)

    def test_subset_restriction(self):
        combos = list(enumerate_haplotypes(20, 2, snp_subset=[1, 5, 9]))
        assert combos == [(1, 5), (1, 9), (5, 9)]

    def test_constraints_filter(self):
        constraints = HaplotypeConstraints.unconstrained(5)
        all_pairs = list(enumerate_haplotypes(5, 2, constraints=constraints))
        assert len(all_pairs) == 10

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            list(enumerate_haplotypes(5, 0))

    def test_evaluate_all_scores_everything(self):
        scored = evaluate_all(_toy_fitness, 6, 2)
        assert len(scored) == 15
        assert all(s.fitness == pytest.approx(_toy_fitness(s.snps)) for s in scored)

    def test_enumerate_best_finds_true_optimum(self):
        top = enumerate_best(_toy_fitness, 10, 3, top_k=1)[0]
        assert top.snps == (0, 1, 2)  # lowest indices maximise the toy fitness
        top2 = enumerate_best(_toy_fitness, 10, 3, top_k=3)
        assert [s.snps for s in top2] == [(0, 1, 2), (0, 1, 3), (0, 1, 4)]
        assert top2[0].fitness >= top2[1].fitness >= top2[2].fitness

    def test_enumerate_best_validation(self):
        with pytest.raises(ValueError):
            enumerate_best(_toy_fitness, 10, 2, top_k=0)

    def test_exhaustive_on_real_evaluator_finds_planted_pair(self, small_evaluator):
        from conftest import SMALL_CAUSAL

        best = enumerate_best(small_evaluator, 14, 2, top_k=3)
        top_snps = set()
        for scored in best:
            top_snps.update(scored.snps)
        assert top_snps & set(SMALL_CAUSAL)


class TestRandomSearch:
    def test_budget_and_sizes_respected(self):
        result = random_search(
            _toy_fitness, n_snps=12, n_evaluations=60, min_size=2, max_size=4, seed=3
        )
        assert result.n_evaluations == 60
        assert set(result.best_per_size) <= {2, 3, 4}
        for size, (snps, fitness) in result.best_per_size.items():
            assert len(snps) == size
            assert fitness == pytest.approx(_toy_fitness(snps))
            assert 1 <= result.evaluations_to_best[size] <= 60

    def test_validation(self):
        with pytest.raises(ValueError):
            random_search(_toy_fitness, n_snps=10, n_evaluations=0)
        with pytest.raises(ValueError):
            random_search(_toy_fitness, n_snps=10, n_evaluations=5, min_size=4, max_size=3)

    def test_more_budget_is_never_worse(self):
        small = random_search(_toy_fitness, n_snps=15, n_evaluations=30, seed=1,
                              min_size=3, max_size=3)
        large = random_search(_toy_fitness, n_snps=15, n_evaluations=300, seed=1,
                              min_size=3, max_size=3)
        assert large.best_fitness(3) >= small.best_fitness(3)


class TestHillClimbing:
    def test_hill_climb_improves_from_start(self, rng):
        constraints = HaplotypeConstraints.unconstrained(12)
        start = (9, 10, 11)  # worst possible start for the toy fitness
        best, fitness, used = hill_climb(
            _toy_fitness, start, constraints=constraints, rng=rng, max_evaluations=500
        )
        assert fitness >= _toy_fitness(start)
        assert best == (0, 1, 2)  # the toy optimum is reachable by single swaps
        assert used <= 500

    def test_budget_respected(self, rng):
        constraints = HaplotypeConstraints.unconstrained(12)
        _best, _fitness, used = hill_climb(
            _toy_fitness, (9, 10, 11), constraints=constraints, rng=rng, max_evaluations=10
        )
        assert used <= 10

    def test_restarted_hill_climbing(self):
        result = restarted_hill_climbing(
            _toy_fitness, n_snps=12, size=3, n_evaluations=200, seed=2
        )
        assert result.best_fitness >= _toy_fitness((9, 10, 11))
        assert result.n_evaluations <= 200 + 40  # the last climb may slightly overshoot
        assert result.n_restarts >= 1
        assert len(result.best_snps) == 3

    def test_restarted_validation(self):
        with pytest.raises(ValueError):
            restarted_hill_climbing(_toy_fitness, n_snps=12, size=3, n_evaluations=0)
