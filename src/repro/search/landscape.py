"""Landscape structure analysis (paper Section 3).

Before choosing a method, the paper studies the structure of the problem by
enumerating all associations of 2, 3 and 4 SNPs on the 51-SNP dataset and
scoring them.  Two findings drive the algorithm design:

1. *good haplotypes of size k are not always composed of good haplotypes of
   size k-1* — which rules out purely constructive/greedy methods, and
2. *haplotypes of different sizes are not comparable* — the fitness scale
   grows with the size, which rules out a single ranking across sizes and
   motivates the per-size sub-populations.

This module quantifies both observations on any dataset:
:func:`building_block_analysis` measures how many of the best size-``k``
haplotypes contain a best size-``k-1`` haplotype, and
:func:`fitness_scale_by_size` summarises the per-size fitness distributions.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Sequence

import numpy as np

from ..genetics.constraints import HaplotypeConstraints
from ..parallel.base import FitnessCallable
from .exhaustive import ScoredHaplotype, evaluate_all

__all__ = [
    "SizeFitnessSummary",
    "BuildingBlockReport",
    "fitness_scale_by_size",
    "building_block_analysis",
    "greedy_constructive_search",
]


@dataclass(frozen=True)
class SizeFitnessSummary:
    """Summary of the fitness distribution of one haplotype size."""

    size: int
    n_haplotypes: int
    min_fitness: float
    mean_fitness: float
    max_fitness: float
    std_fitness: float

    @classmethod
    def from_scores(cls, size: int, scores: Sequence[ScoredHaplotype]) -> "SizeFitnessSummary":
        values = np.asarray([s.fitness for s in scores], dtype=np.float64)
        if values.size == 0:
            raise ValueError(f"no haplotypes of size {size} to summarise")
        return cls(
            size=size,
            n_haplotypes=int(values.size),
            min_fitness=float(values.min()),
            mean_fitness=float(values.mean()),
            max_fitness=float(values.max()),
            std_fitness=float(values.std()),
        )


@dataclass(frozen=True)
class BuildingBlockReport:
    """How often the best size-k haplotypes contain a top size-(k-1) haplotype.

    Attributes
    ----------
    size:
        The larger haplotype size ``k``.
    top_k:
        How many top haplotypes of each size were considered.
    containment_fraction:
        Fraction of the top size-``k`` haplotypes that contain at least one of
        the top size-``k-1`` haplotypes as a subset.  A value well below 1
        reproduces the paper's observation that good large haplotypes are not
        built from good small ones.
    best_large, best_small:
        The top haplotypes of each size that were compared.
    """

    size: int
    top_k: int
    containment_fraction: float
    best_large: tuple[ScoredHaplotype, ...]
    best_small: tuple[ScoredHaplotype, ...]


def fitness_scale_by_size(
    fitness: FitnessCallable,
    n_snps: int,
    sizes: Sequence[int],
    *,
    constraints: HaplotypeConstraints | None = None,
    snp_subset: Sequence[int] | None = None,
) -> dict[int, SizeFitnessSummary]:
    """Exhaustively score each size and summarise its fitness distribution."""
    summaries: dict[int, SizeFitnessSummary] = {}
    for size in sizes:
        scores = evaluate_all(
            fitness, n_snps, size, constraints=constraints, snp_subset=snp_subset
        )
        summaries[size] = SizeFitnessSummary.from_scores(size, scores)
    return summaries


def building_block_analysis(
    fitness: FitnessCallable,
    n_snps: int,
    size: int,
    *,
    top_k: int = 10,
    constraints: HaplotypeConstraints | None = None,
    snp_subset: Sequence[int] | None = None,
) -> BuildingBlockReport:
    """Measure whether the best size-``k`` haplotypes contain top size-``k-1`` ones."""
    if size < 2:
        raise ValueError("size must be at least 2 (the smaller size is size - 1)")
    if top_k < 1:
        raise ValueError("top_k must be positive")
    small_scores = evaluate_all(
        fitness, n_snps, size - 1, constraints=constraints, snp_subset=snp_subset
    )
    large_scores = evaluate_all(
        fitness, n_snps, size, constraints=constraints, snp_subset=snp_subset
    )
    small_scores.sort(key=lambda s: s.fitness, reverse=True)
    large_scores.sort(key=lambda s: s.fitness, reverse=True)
    best_small = tuple(small_scores[:top_k])
    best_large = tuple(large_scores[:top_k])
    small_sets = [set(s.snps) for s in best_small]
    contained = sum(
        1
        for large in best_large
        if any(small <= set(large.snps) for small in small_sets)
    )
    return BuildingBlockReport(
        size=size,
        top_k=min(top_k, len(best_large)),
        containment_fraction=contained / max(len(best_large), 1),
        best_large=best_large,
        best_small=best_small,
    )


def greedy_constructive_search(
    fitness: FitnessCallable,
    n_snps: int,
    target_size: int,
    *,
    constraints: HaplotypeConstraints | None = None,
    seed_size: int = 2,
    snp_subset: Sequence[int] | None = None,
) -> ScoredHaplotype:
    """The constructive method the paper argues against.

    Start from the exhaustive best haplotype of ``seed_size`` SNPs and greedily
    add the single SNP that maximises the fitness until ``target_size`` is
    reached.  Comparing its result with the exhaustive (or GA) optimum of the
    same size quantifies how much the lack of building-block structure costs a
    constructive method.
    """
    if target_size < seed_size:
        raise ValueError("target_size must be at least seed_size")
    constraints = constraints or HaplotypeConstraints.unconstrained(n_snps)
    pool = list(range(n_snps)) if snp_subset is None else sorted({int(s) for s in snp_subset})

    best_seed: ScoredHaplotype | None = None
    for combo in combinations(pool, seed_size):
        if not constraints.is_valid(combo):
            continue
        scored = ScoredHaplotype(snps=combo, fitness=float(fitness(combo)))
        if best_seed is None or scored.fitness > best_seed.fitness:
            best_seed = scored
    if best_seed is None:
        raise ValueError("no feasible seed haplotype under the constraints")

    current = best_seed
    while current.size < target_size:
        best_next: ScoredHaplotype | None = None
        for snp in pool:
            if snp in current.snps:
                continue
            candidate = tuple(sorted(current.snps + (snp,)))
            if not constraints.is_valid(candidate):
                continue
            scored = ScoredHaplotype(snps=candidate, fitness=float(fitness(candidate)))
            if best_next is None or scored.fitness > best_next.fitness:
                best_next = scored
        if best_next is None:
            break
        current = best_next
    return current
