"""Synthetic case/control genotype data with a planted causal haplotype.

The paper evaluates its GA on a proprietary diabetes/obesity dataset from the
Biological Institute of Lille (106 individuals × 51 SNPs for the reported
study, plus larger 249-SNP files).  That data is not public, so this module
provides the substitution documented in ``DESIGN.md``: a forward simulator
that produces case/control genotype datasets with

* block-wise linkage disequilibrium along the SNP panel (haplotypes are built
  by a copy-with-recombination process inside blocks),
* realistic allele-frequency spectra, and
* a *planted causal haplotype*: a chosen set of SNPs whose joint risk
  configuration multiplies the carrier's disease odds, so that the
  EH-DIALL/CLUMP fitness landscape has a known ground-truth optimum.

Two canned generators mirror the paper's datasets:

* :func:`lille_like_study` — 51 SNPs, 53 affected + 53 unaffected (+ optional
  unknown-status individuals), causal haplotype of 4 SNPs;
* :func:`large_study_249` — 249 SNPs, 176 individuals, same structure as the
  paper's larger files.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from .alleles import (
    GENOTYPE_MISSING,
    STATUS_AFFECTED,
    STATUS_UNAFFECTED,
    STATUS_UNKNOWN,
)
from .dataset import GenotypeDataset

__all__ = [
    "PopulationModel",
    "DiseaseModel",
    "SimulatedStudy",
    "simulate_haplotypes",
    "simulate_case_control_study",
    "lille_like_study",
    "large_study_249",
]


@dataclass(frozen=True)
class PopulationModel:
    """Neutral population model: SNP panel with block-wise LD.

    Attributes
    ----------
    n_snps:
        Number of SNPs on the panel.
    block_size:
        Number of consecutive SNPs per LD block.  Within a block, each
        haplotype's allele at SNP ``j`` copies the allele at SNP ``j-1`` with
        probability ``within_block_correlation`` and is drawn fresh otherwise;
        across block boundaries alleles are independent.
    within_block_correlation:
        Copy probability inside a block, in ``[0, 1)``.
    min_allele_frequency, max_allele_frequency:
        Range from which the frequency of allele ``2`` at each SNP is drawn
        uniformly.
    """

    n_snps: int
    block_size: int = 5
    within_block_correlation: float = 0.6
    min_allele_frequency: float = 0.15
    max_allele_frequency: float = 0.5

    def __post_init__(self) -> None:
        if self.n_snps <= 0:
            raise ValueError("n_snps must be positive")
        if self.block_size <= 0:
            raise ValueError("block_size must be positive")
        if not 0.0 <= self.within_block_correlation < 1.0:
            raise ValueError("within_block_correlation must be in [0, 1)")
        if not 0.0 < self.min_allele_frequency <= self.max_allele_frequency < 1.0:
            raise ValueError("allele frequency bounds must satisfy 0 < min <= max < 1")

    def draw_allele_frequencies(self, rng: np.random.Generator) -> np.ndarray:
        """Frequency of allele ``2`` at each SNP."""
        return rng.uniform(self.min_allele_frequency, self.max_allele_frequency, self.n_snps)


@dataclass(frozen=True)
class DiseaseModel:
    """Multi-locus disease model with a single causal haplotype.

    An individual carries 0, 1 or 2 copies of the *risk haplotype*: a copy is
    carried by each of its two chromosomes whose alleles at ``causal_snps``
    match ``risk_alleles`` exactly.  The disease probability is::

        P(affected | k copies) = baseline_penetrance * relative_risk**k

    capped at ``max_penetrance``.  A multiplicative model with a large
    relative risk yields the strong multi-SNP association signal the paper's
    dataset evidently contains (fitness values of 50-160 for 106 individuals).

    Attributes
    ----------
    causal_snps:
        Indices of the SNPs forming the causal haplotype (sorted, unique).
    risk_alleles:
        Allele carried at each causal SNP by the risk haplotype
        (``1`` or ``2``); same length as ``causal_snps``.
    baseline_penetrance:
        Disease probability for non-carriers.
    relative_risk:
        Multiplicative odds increase per risk-haplotype copy.
    max_penetrance:
        Upper cap on the disease probability.
    risk_haplotype_frequency:
        When positive, each simulated chromosome is overwritten with the risk
        alleles at the causal SNPs with this probability.  This plants the
        risk haplotype at a controlled population frequency (and creates the
        strong LD between its SNPs that a real disease haplotype block has);
        when 0 the risk haplotype only occurs by chance combination of the
        individual alleles, which gives a much weaker signal.
    """

    causal_snps: tuple[int, ...]
    risk_alleles: tuple[int, ...]
    baseline_penetrance: float = 0.05
    relative_risk: float = 6.0
    max_penetrance: float = 0.95
    risk_haplotype_frequency: float = 0.0

    def __post_init__(self) -> None:
        if len(self.causal_snps) == 0:
            raise ValueError("causal_snps must not be empty")
        if len(set(self.causal_snps)) != len(self.causal_snps):
            raise ValueError("causal_snps must be unique")
        if tuple(sorted(self.causal_snps)) != tuple(self.causal_snps):
            raise ValueError("causal_snps must be sorted in ascending order")
        if len(self.risk_alleles) != len(self.causal_snps):
            raise ValueError("risk_alleles must have the same length as causal_snps")
        if not all(a in (1, 2) for a in self.risk_alleles):
            raise ValueError("risk_alleles must contain only 1 or 2")
        if not 0.0 < self.baseline_penetrance < 1.0:
            raise ValueError("baseline_penetrance must be in (0, 1)")
        if self.relative_risk < 1.0:
            raise ValueError("relative_risk must be >= 1")
        if not self.baseline_penetrance <= self.max_penetrance <= 1.0:
            raise ValueError("max_penetrance must be in [baseline_penetrance, 1]")
        if not 0.0 <= self.risk_haplotype_frequency < 1.0:
            raise ValueError("risk_haplotype_frequency must be in [0, 1)")

    @property
    def size(self) -> int:
        """Number of SNPs in the causal haplotype."""
        return len(self.causal_snps)

    def risk_copies(self, haplotype_pair: np.ndarray) -> int:
        """Number of risk-haplotype copies carried by a (2, n_snps) allele-pair."""
        snps = np.asarray(self.causal_snps, dtype=np.intp)
        target = np.asarray(self.risk_alleles, dtype=np.int8)
        copies = 0
        for chrom in range(2):
            if np.array_equal(haplotype_pair[chrom, snps], target):
                copies += 1
        return copies

    def penetrance(self, copies: int) -> float:
        """Disease probability given the number of risk-haplotype copies."""
        if copies < 0:
            raise ValueError("copies must be non-negative")
        return float(min(self.baseline_penetrance * self.relative_risk**copies,
                         self.max_penetrance))


@dataclass(frozen=True)
class SimulatedStudy:
    """A simulated case/control study and its generating truth.

    Attributes
    ----------
    dataset:
        The generated :class:`~repro.genetics.dataset.GenotypeDataset`.
    population_model:
        The neutral population model used.
    disease_model:
        The planted disease model — ``disease_model.causal_snps`` is the
        ground-truth haplotype the search methods should recover.
    seed:
        The RNG seed the study was generated from.
    """

    dataset: GenotypeDataset
    population_model: PopulationModel
    disease_model: DiseaseModel
    seed: int

    @property
    def causal_snps(self) -> tuple[int, ...]:
        return self.disease_model.causal_snps


def simulate_haplotypes(
    model: PopulationModel,
    n_haplotypes: int,
    rng: np.random.Generator,
    allele_frequencies: np.ndarray | None = None,
) -> np.ndarray:
    """Simulate phased haplotypes under the neutral population model.

    Returns
    -------
    numpy.ndarray
        ``(n_haplotypes, n_snps)`` array of allele codes ``1``/``2``.
    """
    if n_haplotypes <= 0:
        raise ValueError("n_haplotypes must be positive")
    if allele_frequencies is None:
        allele_frequencies = model.draw_allele_frequencies(rng)
    freq2 = np.asarray(allele_frequencies, dtype=np.float64)
    if freq2.shape != (model.n_snps,):
        raise ValueError("allele_frequencies must have length n_snps")

    haplos = np.empty((n_haplotypes, model.n_snps), dtype=np.int8)
    fresh = (rng.random((n_haplotypes, model.n_snps)) < freq2).astype(np.int8)  # 1 == allele 2
    copy_mask = rng.random((n_haplotypes, model.n_snps)) < model.within_block_correlation

    carries_2 = np.empty((n_haplotypes, model.n_snps), dtype=np.int8)
    for j in range(model.n_snps):
        if j % model.block_size == 0:
            carries_2[:, j] = fresh[:, j]
        else:
            carries_2[:, j] = np.where(copy_mask[:, j], carries_2[:, j - 1], fresh[:, j])
    haplos[:] = np.where(carries_2 == 1, 2, 1)
    return haplos


def _simulate_individual_batch(
    model: PopulationModel,
    disease: DiseaseModel,
    allele_frequencies: np.ndarray,
    batch_size: int,
    rng: np.random.Generator,
) -> tuple[np.ndarray, np.ndarray]:
    """Simulate a batch of individuals; returns (genotypes, affected flags)."""
    h1 = simulate_haplotypes(model, batch_size, rng, allele_frequencies)
    h2 = simulate_haplotypes(model, batch_size, rng, allele_frequencies)
    snps = np.asarray(disease.causal_snps, dtype=np.intp)
    target = np.asarray(disease.risk_alleles, dtype=np.int8)
    if disease.risk_haplotype_frequency > 0.0:
        # plant the intact risk haplotype on a controlled fraction of chromosomes
        for haplotypes in (h1, h2):
            planted = rng.random(batch_size) < disease.risk_haplotype_frequency
            haplotypes[np.ix_(planted, snps)] = target
    carries1 = np.all(h1[:, snps] == target, axis=1)
    carries2 = np.all(h2[:, snps] == target, axis=1)
    copies = carries1.astype(np.int64) + carries2.astype(np.int64)
    pen = np.minimum(
        disease.baseline_penetrance * disease.relative_risk ** copies,
        disease.max_penetrance,
    )
    affected = rng.random(batch_size) < pen
    genotypes = (h1 == 2).astype(np.int8) + (h2 == 2).astype(np.int8)
    return genotypes, affected


def simulate_case_control_study(
    *,
    population_model: PopulationModel,
    disease_model: DiseaseModel,
    n_affected: int,
    n_unaffected: int,
    n_unknown: int = 0,
    missing_rate: float = 0.0,
    seed: int = 0,
    max_batches: int = 10_000,
    batch_size: int = 256,
) -> SimulatedStudy:
    """Simulate a case/control study by rejection sampling to target group sizes.

    Parameters
    ----------
    population_model, disease_model:
        Generating models.
    n_affected, n_unaffected:
        Number of cases and controls to collect.
    n_unknown:
        Additional individuals whose status is recorded as unknown (they are
        drawn from the general population, as in the paper's dataset where 70
        of 176 individuals have unknown status).
    missing_rate:
        Per-genotype probability of being masked as missing.
    seed:
        RNG seed; the whole study is a deterministic function of it.
    max_batches, batch_size:
        Rejection-sampling budget; a :class:`RuntimeError` is raised if the
        target group sizes cannot be reached (e.g. penetrances incompatible
        with the requested case count).
    """
    if n_affected < 0 or n_unaffected < 0 or n_unknown < 0:
        raise ValueError("group sizes must be non-negative")
    if not 0.0 <= missing_rate < 1.0:
        raise ValueError("missing_rate must be in [0, 1)")
    if max(disease_model.causal_snps) >= population_model.n_snps:
        raise ValueError("causal SNP index outside the SNP panel")

    rng = np.random.default_rng(seed)
    allele_freqs = population_model.draw_allele_frequencies(rng)

    cases: list[np.ndarray] = []
    controls: list[np.ndarray] = []
    unknowns: list[np.ndarray] = []

    batches = 0
    while (
        len(cases) < n_affected
        or len(controls) < n_unaffected
        or len(unknowns) < n_unknown
    ):
        if batches >= max_batches:
            raise RuntimeError(
                "rejection sampling budget exhausted; the disease model is "
                "incompatible with the requested group sizes"
            )
        genotypes, affected = _simulate_individual_batch(
            population_model, disease_model, allele_freqs, batch_size, rng
        )
        for row, is_case in zip(genotypes, affected):
            if is_case and len(cases) < n_affected:
                cases.append(row)
            elif not is_case and len(controls) < n_unaffected:
                controls.append(row)
            elif len(unknowns) < n_unknown:
                unknowns.append(row)
        batches += 1

    genotype_rows = cases + controls + unknowns
    status = (
        [STATUS_AFFECTED] * n_affected
        + [STATUS_UNAFFECTED] * n_unaffected
        + [STATUS_UNKNOWN] * n_unknown
    )
    genotypes = np.asarray(genotype_rows, dtype=np.int8)
    if genotypes.size == 0:
        genotypes = genotypes.reshape(0, population_model.n_snps)

    if missing_rate > 0.0 and genotypes.size:
        mask = rng.random(genotypes.shape) < missing_rate
        genotypes = np.where(mask, GENOTYPE_MISSING, genotypes).astype(np.int8)

    dataset = GenotypeDataset(
        genotypes,
        np.asarray(status, dtype=np.int8),
        snp_names=[f"snp{i}" for i in range(population_model.n_snps)],
        individual_ids=[f"ind{i}" for i in range(len(status))],
    )
    return SimulatedStudy(
        dataset=dataset,
        population_model=population_model,
        disease_model=disease_model,
        seed=seed,
    )


# --------------------------------------------------------------------------- #
# Canned studies mirroring the paper's datasets
# --------------------------------------------------------------------------- #
#: Causal SNPs planted in the lille-like study.  They echo the SNP indices the
#: paper reports in its best haplotypes (8, 12, 15, 43 appear repeatedly in
#: Table 2), which makes the reproduced tables easy to compare side by side.
LILLE_CAUSAL_SNPS: tuple[int, ...] = (8, 12, 15, 43)


def lille_like_study(
    *,
    seed: int = 2004,
    n_affected: int = 53,
    n_unaffected: int = 53,
    n_unknown: int = 0,
    n_snps: int = 51,
    relative_risk: float = 5.0,
    risk_haplotype_frequency: float = 0.22,
    missing_rate: float = 0.0,
) -> SimulatedStudy:
    """The 106 × 51 dataset standing in for the paper's Lille diabetes data.

    The default parameters reproduce the paper's reported study: 53 affected
    and 53 healthy individuals typed on 51 SNPs; pass ``n_unknown=70`` to add
    the paper's unknown-status individuals (they do not enter the evaluation).
    """
    causal = tuple(s for s in LILLE_CAUSAL_SNPS if s < n_snps)
    if not causal:
        raise ValueError("n_snps too small for the canned causal haplotype")
    model = PopulationModel(n_snps=n_snps)
    disease = DiseaseModel(
        causal_snps=causal,
        risk_alleles=tuple(2 for _ in causal),
        baseline_penetrance=0.08,
        relative_risk=relative_risk,
        risk_haplotype_frequency=risk_haplotype_frequency,
    )
    return simulate_case_control_study(
        population_model=model,
        disease_model=disease,
        n_affected=n_affected,
        n_unaffected=n_unaffected,
        n_unknown=n_unknown,
        missing_rate=missing_rate,
        seed=seed,
    )


def large_study_249(
    *,
    seed: int = 2004,
    n_affected: int = 53,
    n_unaffected: int = 53,
    n_unknown: int = 70,
    relative_risk: float = 5.0,
    risk_haplotype_frequency: float = 0.22,
) -> SimulatedStudy:
    """A 249-SNP study mirroring the paper's larger data files."""
    n_snps = 249
    causal = (8, 57, 112, 201)
    model = PopulationModel(n_snps=n_snps)
    disease = DiseaseModel(
        causal_snps=causal,
        risk_alleles=tuple(2 for _ in causal),
        baseline_penetrance=0.08,
        relative_risk=relative_risk,
        risk_haplotype_frequency=risk_haplotype_frequency,
    )
    return simulate_case_control_study(
        population_model=model,
        disease_model=disease,
        n_affected=n_affected,
        n_unaffected=n_unaffected,
        n_unknown=n_unknown,
        seed=seed,
    )
