"""Tests of the haplotype-frequency EM (the EH-DIALL computational core)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.genetics.alleles import n_haplotype_states
from repro.stats.em import (
    estimate_haplotype_frequencies,
    expand_phases,
    _genotype_pairs,
    _log_likelihood,
)


def _genotypes_from_haplotypes(h1: np.ndarray, h2: np.ndarray) -> np.ndarray:
    return (h1 + h2).astype(np.int8)


def _haplotype_counts(h: np.ndarray) -> np.ndarray:
    """Exact haplotype state counts of a phased 0/1 haplotype matrix."""
    n_loci = h.shape[1]
    states = (h * (1 << np.arange(n_loci))).sum(axis=1)
    counts = np.bincount(states, minlength=n_haplotype_states(n_loci))
    return counts / counts.sum()


class TestPhaseExpansion:
    def test_homozygote_has_single_pair(self):
        pairs = _genotype_pairs(np.array([0, 2, 0]))
        assert pairs == [(2, 2)]  # allele 2 only at locus 1 -> state 0b010

    def test_single_heterozygote_has_single_pair(self):
        pairs = _genotype_pairs(np.array([1, 0]))
        assert pairs == [(1, 0)]

    def test_double_heterozygote_has_two_pairs(self):
        pairs = _genotype_pairs(np.array([1, 1]))
        assert len(pairs) == 2
        assert {frozenset(p) for p in pairs} == {frozenset({3, 0}), frozenset({1, 2})}

    def test_number_of_pairs_is_exponential_in_heterozygosity(self):
        genotype = np.array([1, 1, 1, 1])
        assert len(_genotype_pairs(genotype)) == 2 ** 3

    def test_expansion_excludes_missing(self):
        genotypes = np.array([[1, 1], [0, -1], [2, 2]], dtype=np.int8)
        expansion = expand_phases(genotypes)
        assert expansion.n_individuals == 2  # the row with missing data is dropped

    def test_expansion_rejects_bad_shapes(self):
        with pytest.raises(ValueError):
            expand_phases(np.array([0, 1, 2]))
        with pytest.raises(ValueError):
            expand_phases(np.zeros((3, 0), dtype=np.int8))

    def test_empty_expansion(self):
        expansion = expand_phases(np.full((3, 2), -1, dtype=np.int8))
        assert expansion.n_individuals == 0
        result = estimate_haplotype_frequencies(np.full((3, 2), -1, dtype=np.int8))
        assert result.n_individuals == 0
        assert result.converged


class TestEMCorrectness:
    def test_unambiguous_data_recovers_exact_counts(self, rng):
        # single-locus heterozygotes only: phase is never ambiguous
        h1 = (rng.random((100, 1)) < 0.3).astype(np.int8)
        h2 = (rng.random((100, 1)) < 0.3).astype(np.int8)
        genotypes = _genotypes_from_haplotypes(h1, h2)
        result = estimate_haplotype_frequencies(genotypes)
        truth = _haplotype_counts(np.vstack([h1, h2]))
        np.testing.assert_allclose(result.frequencies, truth, atol=1e-9)

    def test_frequencies_on_simplex(self, rng):
        h1 = (rng.random((80, 4)) < 0.4).astype(np.int8)
        h2 = (rng.random((80, 4)) < 0.4).astype(np.int8)
        result = estimate_haplotype_frequencies(_genotypes_from_haplotypes(h1, h2))
        assert result.frequencies.shape == (16,)
        assert np.all(result.frequencies >= -1e-12)
        assert result.frequencies.sum() == pytest.approx(1.0)
        assert result.expected_counts().sum() == pytest.approx(2 * 80)

    def test_em_recovers_strong_ld_structure(self, rng):
        # population made of only two complementary haplotypes: 000 and 111
        n = 150
        which = rng.random(n) < 0.6
        h1 = np.where(which[:, None], 1, 0) * np.ones((1, 3), dtype=int)
        which2 = rng.random(n) < 0.6
        h2 = np.where(which2[:, None], 1, 0) * np.ones((1, 3), dtype=int)
        genotypes = _genotypes_from_haplotypes(h1.astype(np.int8), h2.astype(np.int8))
        result = estimate_haplotype_frequencies(genotypes)
        # essentially all the mass must sit on states 0 (000) and 7 (111)
        assert result.frequencies[0] + result.frequencies[7] > 0.97

    def test_loglikelihood_monotone_in_iterations(self, rng):
        h1 = (rng.random((60, 3)) < 0.5).astype(np.int8)
        h2 = (rng.random((60, 3)) < 0.5).astype(np.int8)
        genotypes = _genotypes_from_haplotypes(h1, h2)
        expansion = expand_phases(genotypes)
        lls = []
        for max_iter in (1, 2, 5, 20, 100):
            result = estimate_haplotype_frequencies(genotypes, max_iter=max_iter)
            lls.append(result.log_likelihood)
        assert all(b >= a - 1e-9 for a, b in zip(lls, lls[1:]))
        # and the final likelihood beats the uniform starting point
        uniform = np.full(8, 1 / 8)
        assert lls[-1] >= _log_likelihood(expansion, uniform) - 1e-9

    def test_convergence_flag(self, rng):
        h1 = (rng.random((50, 3)) < 0.4).astype(np.int8)
        h2 = (rng.random((50, 3)) < 0.4).astype(np.int8)
        genotypes = _genotypes_from_haplotypes(h1, h2)
        converged = estimate_haplotype_frequencies(genotypes, max_iter=500)
        assert converged.converged
        assert converged.n_iterations <= 500

    def test_initial_frequencies_validation(self, rng):
        genotypes = _genotypes_from_haplotypes(
            (rng.random((10, 2)) < 0.5).astype(np.int8),
            (rng.random((10, 2)) < 0.5).astype(np.int8),
        )
        with pytest.raises(ValueError):
            estimate_haplotype_frequencies(genotypes, initial_frequencies=np.ones(3))
        with pytest.raises(ValueError):
            estimate_haplotype_frequencies(genotypes, initial_frequencies=np.zeros(4))
        with pytest.raises(ValueError):
            estimate_haplotype_frequencies(genotypes,
                                           initial_frequencies=np.array([0.5, -0.5, 0.5, 0.5]))

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000),
           st.integers(min_value=2, max_value=4))
    def test_simplex_property(self, seed, n_loci):
        rng = np.random.default_rng(seed)
        p = rng.uniform(0.2, 0.8, size=n_loci)
        h1 = (rng.random((40, n_loci)) < p).astype(np.int8)
        h2 = (rng.random((40, n_loci)) < p).astype(np.int8)
        result = estimate_haplotype_frequencies(_genotypes_from_haplotypes(h1, h2))
        assert np.all(result.frequencies >= -1e-12)
        assert result.frequencies.sum() == pytest.approx(1.0, abs=1e-9)
