"""2-bit packed genotype storage (PLINK-style) and its counting kernels.

Second-generation PLINK gets its scale from storing genotypes 4-per-byte and
counting with bitwise/lookup-table kernels instead of touching a byte per
genotype.  This module is that substrate: a SNP-major packed matrix
(:class:`PackedPanel`) plus the kernels every consumer shares —

* :func:`pack_genotypes` / :func:`unpack_genotypes` convert between the byte
  coding of :mod:`repro.genetics.alleles` (``0/1/2/-1``) and 2-bit codes
  (``0/1/2`` plus :data:`CODE_MISSING` = 3 as the fourth state);
* per-byte lookup tables (:data:`_BYTE_DIGITS`, :data:`_BYTE_STATE_COUNTS`)
  expand one packed byte into its four genotype codes, or into per-state
  occurrence counts, in a single fancy-index gather;
* a popcount table drives :meth:`PackedPanel.missing_counts` — missingness is
  the bit pattern ``11``, so ``byte & (byte >> 1) & 0x55`` marks missing
  entries and a population count accumulates them without unpacking;
* :meth:`PackedPanel.codes` builds the base-4 radix code of each individual
  over a set of loci (locus 0 most significant), which is exactly the
  lexicographic class key ``np.unique(genotypes, axis=0)`` sorts by — the
  packed phase-expansion fast path in :mod:`repro.stats.em` histograms these
  codes instead of uniquing byte rows.

Layout: ``data`` has shape ``(n_snps, width)`` with ``width = ceil(n/4)``;
row ``s`` holds SNP ``s``'s genotypes for all individuals, individual ``i``
in byte ``i // 4`` at bits ``2 * (i % 4)`` (little-endian within the byte,
matching the PLINK ``.bed`` field order).  SNP-major means a locus window is
a basic row slice of ``data`` (zero-copy), and the affected-first row order
of the shared-memory store is a *bit offset* (``row_start``) rather than a
byte copy — group views share the same packed buffer.

Padding fields of a trailing partial byte are written as ``CODE_MISSING`` by
:func:`pack_genotypes`; every kernel nevertheless masks the padding
explicitly, so foreign panels (e.g. ``.bed`` translations) with different
padding bits behave identically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from .alleles import GENOTYPE_MISSING, validate_genotype_array

__all__ = [
    "CODE_MISSING",
    "PackedPanel",
    "pack_genotypes",
    "unpack_genotypes",
    "packed_width",
]

#: 2-bit code of a missing genotype (codes 0/1/2 are the genotype values).
CODE_MISSING = 3

#: (256, 4) uint8 — the four 2-bit fields of every byte value, field 0 first.
_BYTE_DIGITS = (
    (np.arange(256, dtype=np.uint16)[:, None] >> (2 * np.arange(4, dtype=np.uint16))) & 3
).astype(np.uint8)

#: (256, 4) uint8 — per-byte occurrence count of each 2-bit state.
_BYTE_STATE_COUNTS = np.stack(
    [(_BYTE_DIGITS == state).sum(axis=1) for state in range(4)], axis=1
).astype(np.uint8)

#: (256,) uint8 — population count of every byte value (bits set).
_POPCOUNT = np.unpackbits(np.arange(256, dtype=np.uint8)[:, None], axis=1).sum(axis=1)

#: map 2-bit code -> byte genotype code (3 -> missing).
_CODE_TO_GENOTYPE = np.array([0, 1, 2, GENOTYPE_MISSING], dtype=np.int8)


def packed_width(n_individuals: int) -> int:
    """Bytes needed to pack ``n_individuals`` genotypes 4-per-byte."""
    return (int(n_individuals) + 3) // 4


def pack_genotypes(genotypes: np.ndarray) -> np.ndarray:
    """Pack a ``(n_individuals, n_snps)`` byte matrix into ``(n_snps, width)``.

    Missing genotypes (``-1``) become :data:`CODE_MISSING`; padding fields of
    a trailing partial byte are also :data:`CODE_MISSING` (the canonical
    padding — kernels mask it regardless).
    """
    geno = validate_genotype_array(np.asarray(genotypes))
    if geno.ndim != 2:
        raise ValueError(f"genotypes must be 2-D, got shape {geno.shape}")
    n, m = geno.shape
    width = packed_width(n)
    codes = np.where(geno == GENOTYPE_MISSING, CODE_MISSING, geno).astype(np.uint8)
    padded = np.full((m, width * 4), CODE_MISSING, dtype=np.uint8)
    padded[:, :n] = codes.T
    fields = padded.reshape(m, width, 4)
    packed = (
        fields[:, :, 0]
        | (fields[:, :, 1] << 2)
        | (fields[:, :, 2] << 4)
        | (fields[:, :, 3] << 6)
    )
    return np.ascontiguousarray(packed)


def unpack_genotypes(packed: np.ndarray, n_individuals: int, *, row_start: int = 0) -> np.ndarray:
    """Unpack ``(n_snps, width)`` packed bytes back to ``(n, n_snps)`` int8.

    ``row_start`` skips that many leading individuals of the packed buffer
    (bit offset views; see :class:`PackedPanel`).
    """
    packed = np.asarray(packed, dtype=np.uint8)
    if packed.ndim != 2:
        raise ValueError(f"packed matrix must be 2-D, got shape {packed.shape}")
    m = packed.shape[0]
    lo, hi = row_start, row_start + n_individuals
    b0, b1 = lo // 4, (hi + 3) // 4
    if b1 > packed.shape[1]:
        raise ValueError(
            f"rows [{lo}, {hi}) exceed the packed width {packed.shape[1]} (bytes)"
        )
    digits = _BYTE_DIGITS[packed[:, b0:b1]].reshape(m, -1)[:, lo - 4 * b0 : lo - 4 * b0 + n_individuals]
    return np.ascontiguousarray(_CODE_TO_GENOTYPE[digits].T)


@dataclass(frozen=True)
class PackedPanel:
    """A read-only view over 2-bit packed genotypes.

    ``data`` is the SNP-major packed matrix (possibly a window into a larger
    buffer — e.g. a shared-memory segment, or a basic row slice of another
    panel's ``data``).  ``row_start`` is the index of this view's first
    individual within the packed bytes: row windows are bit-offset views, so
    the affected/unaffected groups of an affected-first panel share one
    buffer with the full panel.
    """

    data: np.ndarray = field(repr=False)
    n_individuals: int
    row_start: int = 0

    def __post_init__(self) -> None:
        data = np.asarray(self.data, dtype=np.uint8)
        if data.ndim != 2:
            raise ValueError(f"packed data must be 2-D, got shape {data.shape}")
        if self.n_individuals < 0 or self.row_start < 0:
            raise ValueError("n_individuals and row_start must be non-negative")
        if self.row_start + self.n_individuals > data.shape[1] * 4:
            raise ValueError(
                f"rows [{self.row_start}, {self.row_start + self.n_individuals}) "
                f"exceed the packed capacity of {data.shape[1] * 4} individuals"
            )
        object.__setattr__(self, "data", data)

    # ------------------------------------------------------------------ #
    @property
    def n_snps(self) -> int:
        return self.data.shape[0]

    @property
    def n_bytes(self) -> int:
        return self.data.nbytes

    # -- views ---------------------------------------------------------- #
    def column_window(self, start: int, stop: int) -> "PackedPanel":
        """Zero-copy view of the SNP window ``[start, stop)`` (basic row slice)."""
        if not 0 <= start < stop <= self.n_snps:
            raise IndexError(
                f"window [{start}, {stop}) out of range for {self.n_snps} SNPs"
            )
        return PackedPanel(self.data[start:stop], self.n_individuals, self.row_start)

    def row_window(self, start: int, stop: int) -> "PackedPanel":
        """Zero-copy view of individuals ``[start, stop)`` (bit-offset, same buffer)."""
        if not 0 <= start <= stop <= self.n_individuals:
            raise IndexError(
                f"rows [{start}, {stop}) out of range for {self.n_individuals} individuals"
            )
        return PackedPanel(self.data, stop - start, self.row_start + start)

    # -- kernels -------------------------------------------------------- #
    def digits(self, snp: int) -> np.ndarray:
        """Per-individual 2-bit codes (0/1/2/3) of one SNP column."""
        lo = self.row_start
        b0 = lo // 4
        b1 = (lo + self.n_individuals + 3) // 4
        flat = _BYTE_DIGITS[self.data[snp, b0:b1]].ravel()
        off = lo - 4 * b0
        return flat[off : off + self.n_individuals]

    def codes(self, snps: Sequence[int] | np.ndarray) -> np.ndarray:
        """Base-4 radix code of every individual over the given loci.

        Locus 0 of ``snps`` is the most significant digit, so ascending code
        order is exactly the lexicographic row order ``np.unique(axis=0)``
        sorts complete byte genotypes into — the property the bit-identical
        packed expansion path rests on.
        """
        idx = np.asarray(snps, dtype=np.intp)
        n_loci = idx.shape[0]
        dtype = np.int32 if n_loci <= 15 else np.int64
        codes = np.zeros(self.n_individuals, dtype=dtype)
        for snp in idx:
            np.multiply(codes, 4, out=codes)
            np.add(codes, self.digits(int(snp)), out=codes, casting="unsafe")
        return codes

    def state_counts(self) -> np.ndarray:
        """Per-SNP occurrence counts of each state — shape ``(n_snps, 4)``.

        Whole bytes are counted through the 256-entry per-byte histogram LUT
        (one gather + one sum per panel); the at-most-3 individuals in each
        partial boundary byte are counted from their digits.  Padding and
        out-of-window neighbours are excluded exactly.
        """
        lo, hi = self.row_start, self.row_start + self.n_individuals
        b0, b1 = (lo + 3) // 4, hi // 4
        counts = np.zeros((self.n_snps, 4), dtype=np.int64)
        if b1 > b0:
            counts += _BYTE_STATE_COUNTS[self.data[:, b0:b1]].sum(axis=1, dtype=np.int64)
        if b1 < b0:  # the whole window lives inside one partial byte
            boundaries = ((lo // 4, lo, hi),)
        else:
            boundaries = ((lo // 4, lo, 4 * b0), (b1, 4 * b1, hi))
        for byte, first, last in boundaries:
            if first >= last:
                continue
            digits = _BYTE_DIGITS[self.data[:, byte]][:, first - 4 * byte : last - 4 * byte]
            counts += (digits[:, :, None] == np.arange(4, dtype=np.uint8)).sum(axis=1)
        return counts

    def missing_counts(self) -> np.ndarray:
        """Per-SNP missing-genotype counts via popcount accumulation.

        A missing entry is the bit pattern ``11``, so ``b & (b >> 1) & 0x55``
        leaves one set bit per missing genotype in a byte and the popcount
        table sums them; boundary bytes are first masked down to the view's
        own fields.
        """
        lo, hi = self.row_start, self.row_start + self.n_individuals
        b0, b1 = lo // 4, (hi + 3) // 4
        window = self.data[:, b0:b1]
        marks = (window & (window >> 1) & 0x55).astype(np.uint8)
        if marks.shape[1]:
            head = lo - 4 * b0
            if head:
                marks[:, 0] &= np.uint8((0xFF << (2 * head)) & 0xFF)
            tail = 4 * b1 - hi
            if tail:
                marks[:, -1] &= np.uint8(0xFF >> (2 * tail))
        return _POPCOUNT[marks].sum(axis=1, dtype=np.int64)

    # -- materialisation ------------------------------------------------- #
    def unpack(self) -> np.ndarray:
        """The ``(n_individuals, n_snps)`` int8 byte matrix of this view."""
        return unpack_genotypes(self.data, self.n_individuals, row_start=self.row_start)

    def unpack_columns(self, snps: Sequence[int] | np.ndarray) -> np.ndarray:
        """Byte genotypes of the given SNP columns, shape ``(n, len(snps))``."""
        idx = np.asarray(snps, dtype=np.intp)
        out = np.empty((self.n_individuals, idx.shape[0]), dtype=np.int8)
        for j, snp in enumerate(idx):
            out[:, j] = _CODE_TO_GENOTYPE[self.digits(int(snp))]
        return out

    def reorder_individuals(self, order: np.ndarray, *, chunk_snps: int = 1024) -> "PackedPanel":
        """A new panel with individuals permuted by ``order`` (chunked repack).

        Processes ``chunk_snps`` SNP rows at a time so a chromosome-scale
        panel is re-ordered without materialising the full byte matrix.
        """
        order = np.asarray(order, dtype=np.intp)
        if order.ndim != 1 or (order.size and not (0 <= order.min() and order.max() < self.n_individuals)):
            raise IndexError("order must be a 1-D array of valid individual indices")
        out = np.empty((self.n_snps, packed_width(order.size)), dtype=np.uint8)
        for start in range(0, self.n_snps, chunk_snps):
            stop = min(start + chunk_snps, self.n_snps)
            chunk = self.column_window(start, stop) if self.n_snps else self
            out[start:stop] = pack_genotypes(chunk.unpack()[order])
        return PackedPanel(out, order.size)
