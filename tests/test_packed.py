"""Tests of the 2-bit packed genotype substrate.

Layers under test, bottom-up: the packing kernels
(:mod:`repro.genetics.packed`), the packed class-counting fast path
(:func:`repro.stats.em.expand_phases_packed`), the dual-representation
:class:`~repro.genetics.dataset.GenotypeDataset`, packed shared-memory
segments, evaluator/scan bit-identity with ``packed=True``, checkpoint
substrate pinning, and the PLINK ``.bed`` reader/writer feeding the CLI.

The load-bearing contract everywhere is *bit-identity*: every packed code
path must produce byte-for-byte the same PhaseExpansions, LRT values and
scan reports as the byte substrate it shadows.
"""

import os
import pickle

import numpy as np
import pytest

from repro.core.config import GAConfig
from repro.genetics.dataset import (
    GENOTYPE_MISSING,
    GenotypeDataset,
    PackedGenotypeStore,
    as_packed_dataset,
)
from repro.genetics.io import read_bed, write_bed
from repro.genetics.packed import (
    CODE_MISSING,
    PackedPanel,
    pack_genotypes,
    packed_width,
    unpack_genotypes,
)
from repro.runtime.shm import SharedGenotypeStore, _as_contiguous_int8
from repro.scan import CheckpointMismatchError, run_scan
from repro.stats.em import expand_phases, expand_phases_packed
from repro.stats.evaluation import HaplotypeEvaluator


def _random_genotypes(rng, n, m, missing_rate=0.15):
    g = rng.integers(0, 3, size=(n, m)).astype(np.int8)
    if missing_rate:
        g[rng.random(size=g.shape) < missing_rate] = GENOTYPE_MISSING
    return g


def _random_dataset(rng, n, m, missing_rate=0.15):
    status = np.concatenate(
        [np.ones(n // 2, dtype=np.int8), np.zeros(n - n // 2, dtype=np.int8)]
    )
    return GenotypeDataset(_random_genotypes(rng, n, m, missing_rate), status)


def _expansions_equal(a, b):
    assert a.n_loci == b.n_loci
    for field in (
        "class_counts",
        "class_genotypes",
        "pair_a",
        "pair_b",
        "pair_class",
        "pair_multiplicity",
    ):
        left, right = getattr(a, field), getattr(b, field)
        assert left.dtype == right.dtype, field
        np.testing.assert_array_equal(left, right, err_msg=field)


# --------------------------------------------------------------------------- #
# packing kernels
# --------------------------------------------------------------------------- #
class TestPackKernels:
    @pytest.mark.parametrize("n", [1, 2, 3, 4, 5, 7, 8, 106])
    def test_round_trip_every_width_residue(self, rng, n):
        g = _random_genotypes(rng, n, 11)
        packed = pack_genotypes(g)
        assert packed.shape == (11, packed_width(n))
        assert packed.dtype == np.uint8
        np.testing.assert_array_equal(unpack_genotypes(packed, n), g)

    def test_padding_bits_are_the_missing_code(self, rng):
        packed = pack_genotypes(np.zeros((5, 3), dtype=np.int8))
        # individuals 5..7 of the last byte are padding: all digits 3
        assert int(packed[0, -1]) >> 2 == 0b111111 & (0b111111 * 0 | 0x3F)
        for snp in range(3):
            assert (int(packed[snp, -1]) >> 2) == 0x3F

    def test_invalid_codes_raise(self):
        bad = np.full((2, 2), 5, dtype=np.int8)
        with pytest.raises(ValueError):
            pack_genotypes(bad)

    def test_column_window_is_zero_copy(self, rng):
        panel = PackedPanel(pack_genotypes(_random_genotypes(rng, 10, 20)), 10)
        window = panel.column_window(4, 12)
        assert window.n_snps == 8
        assert np.shares_memory(window.data, panel.data)
        np.testing.assert_array_equal(window.unpack(), panel.unpack()[:, 4:12])

    @pytest.mark.parametrize("start,stop", [(0, 3), (1, 3), (3, 9), (5, 6), (4, 8)])
    def test_row_window_at_bit_offsets(self, rng, start, stop):
        g = _random_genotypes(rng, 9, 7)
        panel = PackedPanel(pack_genotypes(g), 9)
        window = panel.row_window(start, stop)
        np.testing.assert_array_equal(window.unpack(), g[start:stop])
        counts = window.state_counts()
        for snp in range(7):
            expected = np.bincount(
                np.where(g[start:stop, snp] < 0, 3, g[start:stop, snp]), minlength=4
            )
            np.testing.assert_array_equal(counts[snp], expected)
        np.testing.assert_array_equal(
            window.missing_counts(),
            (g[start:stop] == GENOTYPE_MISSING).sum(axis=0),
        )

    def test_state_and_missing_counts_match_numpy(self, rng):
        g = _random_genotypes(rng, 106, 31, missing_rate=0.3)
        panel = PackedPanel(pack_genotypes(g), 106)
        counts = panel.state_counts()
        digits = np.where(g < 0, 3, g)
        for snp in range(31):
            np.testing.assert_array_equal(
                counts[snp], np.bincount(digits[:, snp], minlength=4)
            )
        np.testing.assert_array_equal(
            panel.missing_counts(), (g == GENOTYPE_MISSING).sum(axis=0)
        )

    def test_codes_match_base4_reference(self, rng):
        g = _random_genotypes(rng, 50, 12)
        panel = PackedPanel(pack_genotypes(g), 50)
        idx = np.array([7, 2, 9], dtype=np.intp)
        digits = np.where(g[:, idx] < 0, 3, g[:, idx]).astype(np.int64)
        expected = digits[:, 0] * 16 + digits[:, 1] * 4 + digits[:, 2]
        np.testing.assert_array_equal(panel.codes(idx), expected)

    def test_reorder_individuals_matches_fancy_indexing(self, rng):
        g = _random_genotypes(rng, 33, 40)
        panel = PackedPanel(pack_genotypes(g), 33)
        order = rng.permutation(33)
        reordered = panel.reorder_individuals(order, chunk_snps=16)
        np.testing.assert_array_equal(reordered.unpack(), g[order])
        assert reordered.row_start == 0


# --------------------------------------------------------------------------- #
# packed class counting (satellite: the missing-genotype 4th state)
# --------------------------------------------------------------------------- #
class TestExpandPhasesPacked:
    @pytest.mark.parametrize("n_loci", [1, 2, 3, 5, 8])
    def test_bitwise_parity_with_missing_genotypes(self, rng, n_loci):
        g = _random_genotypes(rng, 60, 12, missing_rate=0.25)
        panel = PackedPanel(pack_genotypes(g), 60)
        idx = rng.choice(12, size=n_loci, replace=False).astype(np.intp)
        _expansions_equal(
            expand_phases_packed(panel, idx), expand_phases(g[:, idx])
        )

    def test_n_complete_counts_only_fully_typed_rows(self, rng):
        g = _random_genotypes(rng, 40, 6, missing_rate=0.3)
        panel = PackedPanel(pack_genotypes(g), 40)
        idx = np.array([0, 3, 5], dtype=np.intp)
        expansion = expand_phases_packed(panel, idx)
        complete = ~(g[:, idx] == GENOTYPE_MISSING).any(axis=1)
        assert expansion.n_individuals == int(complete.sum())
        assert int(expansion.class_counts.sum()) == int(complete.sum())

    def test_all_missing_column_yields_empty_expansion(self):
        g = np.array([[0, -1], [1, -1], [2, -1]], dtype=np.int8)
        panel = PackedPanel(pack_genotypes(g), 3)
        idx = np.array([0, 1], dtype=np.intp)
        packed = expand_phases_packed(panel, idx)
        byte = expand_phases(g[:, idx])
        _expansions_equal(packed, byte)
        assert packed.n_individuals == 0
        assert packed.class_genotypes.shape == (0, 2)

    def test_no_loci_raises(self, rng):
        panel = PackedPanel(pack_genotypes(_random_genotypes(rng, 4, 4)), 4)
        with pytest.raises(ValueError):
            expand_phases_packed(panel, np.array([], dtype=np.intp))

    def test_row_window_parity(self, rng):
        g = _random_genotypes(rng, 21, 9, missing_rate=0.2)
        panel = PackedPanel(pack_genotypes(g), 21).row_window(5, 18)
        idx = np.array([8, 0, 4], dtype=np.intp)
        _expansions_equal(
            expand_phases_packed(panel, idx), expand_phases(g[5:18][:, idx])
        )


# --------------------------------------------------------------------------- #
# dual-representation dataset
# --------------------------------------------------------------------------- #
class TestPackedDataset:
    def test_store_orders_affected_first_and_round_trips(self, rng):
        g = _random_genotypes(rng, 20, 10)
        status = rng.permutation(
            np.concatenate([np.ones(9, np.int8), np.zeros(9, np.int8),
                            np.full(2, -1, np.int8)])
        )
        source = GenotypeDataset(g, status)
        store = PackedGenotypeStore(source)
        packed_ds = store.dataset()
        assert not packed_ds.is_materialized
        assert packed_ds.n_affected == 9 and packed_ds.n_unaffected == 9
        assert packed_ds.n_unknown == 0
        order = np.concatenate(
            [np.flatnonzero(status == 1), np.flatnonzero(status == 0)]
        )
        np.testing.assert_array_equal(packed_ds.genotypes, g[order])

    def test_as_packed_dataset_is_a_no_op_on_packed_affected_first(self, rng):
        ds = as_packed_dataset(_random_dataset(rng, 16, 8))
        assert as_packed_dataset(ds) is ds

    def test_no_known_status_raises(self, rng):
        g = _random_genotypes(rng, 4, 4)
        with pytest.raises(ValueError):
            PackedGenotypeStore(GenotypeDataset(g, np.full(4, -1, np.int8)))

    def test_materialization_is_lazy_and_cached(self, rng):
        ds = as_packed_dataset(_random_dataset(rng, 12, 6))
        assert not ds.is_materialized
        first = ds.genotypes
        assert ds.is_materialized
        # further reads are views over the one materialised matrix
        assert np.shares_memory(ds.genotypes, first)

    def test_select_snps_and_contiguous_individuals_stay_packed(self, rng):
        ds = as_packed_dataset(_random_dataset(rng, 20, 15))
        window = ds.select_snps(np.arange(3, 11))
        assert not window.is_materialized
        affected = ds.affected()
        assert not affected.is_materialized
        fancy = ds.select_snps(np.array([9, 1, 4]))
        assert not fancy.is_materialized
        np.testing.assert_array_equal(
            fancy.genotypes, ds.genotypes[:, [9, 1, 4]]
        )

    def test_missing_rate_matches_byte_path_without_materializing(self, rng):
        ds = as_packed_dataset(_random_dataset(rng, 30, 9, missing_rate=0.3))
        byte = GenotypeDataset(ds.genotypes.copy(), ds.status.copy())
        repacked = GenotypeDataset(None, ds.status, packed=ds.packed)
        assert repacked.missing_rate == byte.missing_rate
        assert not repacked.is_materialized

    def test_fingerprint_is_representation_independent(self, rng):
        ds = _random_dataset(rng, 25, 33, missing_rate=0.2)
        packed = as_packed_dataset(ds)
        byte = GenotypeDataset(
            packed.genotypes.copy(),
            packed.status.copy(),
            snp_names=packed.snp_names,
            individual_ids=packed.individual_ids,
        )
        assert packed.fingerprint() == byte.fingerprint()

    def test_pickle_of_packed_dataset_drops_the_byte_matrix(self, rng):
        packed = as_packed_dataset(_random_dataset(rng, 64, 120, missing_rate=0.1))
        byte = GenotypeDataset(packed.genotypes.copy(), packed.status.copy())
        packed._materialize()
        packed_blob = pickle.dumps(packed)
        byte_blob = pickle.dumps(byte)
        assert len(packed_blob) < len(byte_blob) / 2
        restored = pickle.loads(packed_blob)
        assert restored == packed


# --------------------------------------------------------------------------- #
# packed shared memory
# --------------------------------------------------------------------------- #
class TestPackedShm:
    def test_as_contiguous_int8_skips_the_copy_when_possible(self):
        a = np.arange(12, dtype=np.int8)
        assert _as_contiguous_int8(a) is a
        sliced = np.arange(24, dtype=np.int8)[::2]
        copied = _as_contiguous_int8(sliced)
        assert copied is not sliced and copied.flags.c_contiguous
        widened = _as_contiguous_int8(np.arange(4, dtype=np.int64))
        assert widened.dtype == np.int8

    def test_packed_segment_is_at_least_3_5x_smaller(self, rng):
        ds = _random_dataset(rng, 106, 201, missing_rate=0.05)
        byte_store = SharedGenotypeStore(ds)
        packed_store = SharedGenotypeStore(ds, packed=True)
        try:
            ratio = byte_store.n_bytes / packed_store.n_bytes
            assert ratio >= 3.5, ratio
        finally:
            byte_store.release()
            packed_store.release()

    def test_packed_load_parity_and_windowing(self, rng):
        ds = _random_dataset(rng, 18, 14, missing_rate=0.2)
        reference = as_packed_dataset(ds)
        store = SharedGenotypeStore(ds, packed=True)
        try:
            view = store.handle.load()
            assert not view.is_materialized
            np.testing.assert_array_equal(view.genotypes, reference.genotypes)
            np.testing.assert_array_equal(view.status, reference.status)
            window_handle = store.handle.window(3, 9)
            windowed = window_handle.load()
            np.testing.assert_array_equal(
                windowed.genotypes, reference.genotypes[:, 3:9]
            )
            unpack_handle = store.handle.with_unpack_on_attach()
            unpacked = unpack_handle.load()
            assert unpacked.is_materialized
            np.testing.assert_array_equal(unpacked.genotypes, reference.genotypes)
            del view, windowed, unpacked
            store.handle.detach()
            window_handle.detach()
            unpack_handle.detach()
        finally:
            store.release()

    def test_packed_handle_survives_pickling(self, rng):
        ds = _random_dataset(rng, 10, 8)
        store = SharedGenotypeStore(ds, packed=True)
        try:
            handle = pickle.loads(pickle.dumps(store.handle))
            view = handle.load()
            np.testing.assert_array_equal(
                view.genotypes, as_packed_dataset(ds).genotypes
            )
            del view
            handle.detach()
        finally:
            store.release()


# --------------------------------------------------------------------------- #
# evaluator and scan bit-identity
# --------------------------------------------------------------------------- #
class TestPackedEvaluator:
    def test_lrt_bitwise_parity_with_missing_genotypes(self, rng):
        ds = _random_dataset(rng, 50, 16, missing_rate=0.2)
        byte_eval = HaplotypeEvaluator(ds, statistic="lrt")
        packed_eval = HaplotypeEvaluator(as_packed_dataset(ds), statistic="lrt")
        for snps in [(0, 1), (3, 7, 11), (15, 2, 8, 5), (9,)]:
            assert byte_eval.evaluate(snps) == packed_eval.evaluate(snps)

    def test_t1_parity_on_the_shared_fixture(self, small_dataset):
        byte_eval = HaplotypeEvaluator(small_dataset)
        packed_eval = HaplotypeEvaluator(as_packed_dataset(small_dataset))
        for snps in [(2, 5), (2, 5, 9), (0, 13), (4, 6, 10)]:
            assert byte_eval.evaluate(snps) == packed_eval.evaluate(snps)


def _scan_key(report):
    return [(w.window.index, w.best_snps, w.best_fitness) for w in report.windows]


@pytest.fixture(scope="module")
def scan_study():
    from repro.genetics.simulate import (
        DiseaseModel,
        PopulationModel,
        simulate_case_control_study,
    )

    model = PopulationModel(n_snps=201, block_size=6, within_block_correlation=0.4)
    disease = DiseaseModel(
        causal_snps=(20, 100, 180),
        risk_alleles=(2, 2, 2),
        baseline_penetrance=0.1,
        relative_risk=6.0,
        risk_haplotype_frequency=0.3,
    )
    return simulate_case_control_study(
        population_model=model,
        disease_model=disease,
        n_affected=20,
        n_unaffected=20,
        seed=31,
    ).dataset


class TestPackedScan:
    CONFIG = GAConfig(
        population_size=6,
        min_haplotype_size=2,
        max_haplotype_size=2,
        termination_stagnation=1,
        max_generations=2,
        point_mutation_trials=1,
    )

    def _scan(self, dataset, **kwargs):
        return run_scan(
            dataset, window_size=4, overlap=2, config=self.CONFIG, seed=17, **kwargs
        )

    def test_fingerprint_unchanged_packed_on_off_across_backends(self, scan_study):
        byte_report = self._scan(scan_study)
        packed_serial = self._scan(scan_study, packed=True)
        packed_shm = self._scan(
            scan_study, packed=True, backend="process-shm", n_workers=2
        )
        packed_async = self._scan(
            scan_study, packed=True, backend="async", n_workers=2
        )
        assert (
            _scan_key(byte_report)
            == _scan_key(packed_serial)
            == _scan_key(packed_shm)
            == _scan_key(packed_async)
        )
        assert byte_report.stats.counters() == packed_serial.stats.counters()

    def test_checkpoint_pins_the_substrate(self, scan_study, tmp_path):
        path = tmp_path / "scan.jsonl"
        self._scan(scan_study, checkpoint_path=path)
        with pytest.raises(CheckpointMismatchError, match="different scan"):
            self._scan(scan_study, checkpoint_path=path, resume=True, packed=True)

    def test_packed_resume_is_bit_identical(self, scan_study, tmp_path):
        path = tmp_path / "packed.jsonl"
        reference = self._scan(scan_study, packed=True, checkpoint_path=path)
        # keep the header and the first 10 journaled windows: a scan killed
        # mid-flight leaves exactly this shape behind
        with open(path) as handle:
            lines = handle.readlines()
        with open(path, "w") as handle:
            handle.writelines(lines[:11])
        resumed = self._scan(
            scan_study, packed=True, checkpoint_path=path, resume=True
        )
        assert _scan_key(resumed) == _scan_key(reference)


# --------------------------------------------------------------------------- #
# PLINK .bed round trip and the CLI
# --------------------------------------------------------------------------- #
class TestBedIO:
    @pytest.mark.parametrize("n", [1, 4, 7, 106])
    def test_round_trip(self, rng, n, tmp_path):
        g = _random_genotypes(rng, n, 13, missing_rate=0.2)
        status = rng.choice(
            np.array([1, 0, -1], dtype=np.int8), size=n
        ).astype(np.int8)
        ds = GenotypeDataset(g, status)
        prefix = str(tmp_path / "study")
        write_bed(ds, prefix)
        back = read_bed(prefix)
        assert back.packed is not None and not back.is_materialized
        np.testing.assert_array_equal(
            np.asarray(back.packed.data), pack_genotypes(g)
        )
        assert back == ds
        assert read_bed(prefix + ".bed", mmap=False) == ds

    def test_validation_errors(self, rng, tmp_path):
        ds = _random_dataset(rng, 6, 5)
        prefix = str(tmp_path / "study")
        bed_path, _bim, _fam = write_bed(ds, prefix)
        with open(bed_path, "r+b") as fh:
            fh.write(b"\x00\x00")
        with pytest.raises(ValueError, match="magic"):
            read_bed(prefix)
        with open(bed_path, "r+b") as fh:
            fh.write(b"\x6c\x1b\x00")
        with pytest.raises(ValueError, match="SNP-major"):
            read_bed(prefix)
        with open(bed_path, "r+b") as fh:
            fh.write(b"\x6c\x1b\x01")
            fh.truncate(5)
        with pytest.raises(ValueError, match="bytes"):
            read_bed(prefix)
        os.remove(bed_path)
        with pytest.raises(FileNotFoundError):
            read_bed(prefix)

    def test_cli_scan_bed(self, rng, tmp_path, capsys):
        from repro.cli import main

        ds = _random_dataset(rng, 20, 24, missing_rate=0.0)
        prefix = str(tmp_path / "panel")
        write_bed(ds, prefix)
        exit_code = main(
            [
                "scan", "--bed", prefix,
                "--window-size", "4", "--window-overlap", "2",
                "--population-size", "6", "--max-size", "2",
                "--stagnation", "1", "--max-generations", "2",
                "--seed", "17", "--top", "3",
            ]
        )
        out = capsys.readouterr().out
        assert exit_code == 0
        assert "24 loci" in out

    def test_cli_rejects_study_plus_bed(self, tmp_path, capsys):
        from repro.cli import main

        exit_code = main(["scan", str(tmp_path), "--bed", str(tmp_path / "x")])
        assert exit_code == 2
        assert "not both" in capsys.readouterr().err
