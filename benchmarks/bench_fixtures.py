"""Shared fixtures of the benchmark harness, importable without name collisions.

Every benchmark regenerates one of the paper's tables or figures.  Because the
paper-scale experiment (Table 2: 10 runs of a population-150 GA until 100
stagnant generations) takes tens of minutes, the benchmarks default to a
reduced but same-shaped configuration; set the environment variable
``REPRO_BENCH_SCALE=paper`` to run the full-scale versions.

The fixtures live here — under a name that cannot collide with
``tests/conftest.py`` — and ``benchmarks/conftest.py`` re-exports them with a
plain ``from bench_fixtures import ...`` so that standalone tools (and the
microbenchmark scripts) can also ``import bench_fixtures`` directly.
"""

from __future__ import annotations

import os
import sys

import pytest

_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if os.path.isdir(_SRC) and _SRC not in sys.path:  # pragma: no cover - environment dependent
    sys.path.insert(0, _SRC)

from repro.experiments.datasets import DEFAULT_SEED, lille51, lille51_evaluator  # noqa: E402
from repro.experiments.table2 import paper_scale_config, quick_config  # noqa: E402


def bench_scale() -> str:
    """The benchmark scale: ``"quick"`` (default) or ``"paper"``."""
    scale = os.environ.get("REPRO_BENCH_SCALE", "quick").lower()
    return scale if scale in ("quick", "paper") else "quick"


@pytest.fixture(scope="session")
def scale() -> str:
    return bench_scale()


@pytest.fixture(scope="session")
def study():
    """The canonical lille-like 106 x 51 study used by every benchmark."""
    return lille51(DEFAULT_SEED)


@pytest.fixture(scope="session")
def evaluator(study):
    return lille51_evaluator(DEFAULT_SEED)


@pytest.fixture(scope="session")
def ga_config(scale):
    """GA configuration matched to the benchmark scale."""
    if scale == "paper":
        return paper_scale_config()
    return quick_config()


@pytest.fixture(scope="session")
def n_runs(scale) -> int:
    """Number of repeated GA runs for the Table-2 / ablation benchmarks."""
    return 10 if scale == "paper" else 2
