#!/usr/bin/env python
"""Diff two ``BENCH_*.json`` trajectory files and fail on regressions.

Compares every numeric leaf whose key ends in ``_seconds`` between a baseline
and a candidate benchmark report (same schema, e.g. two runs of
``benchmarks/bench_em_kernel.py``) and exits non-zero when any timing
regressed by more than the threshold (default 10%).

Usage::

    python scripts/bench_compare.py BENCH_baseline.json BENCH_candidate.json
    python scripts/bench_compare.py --threshold 0.25 old.json new.json
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Iterator


def _timing_leaves(node, path: str = "") -> Iterator[tuple[str, float]]:
    """Yield ``(dotted.path, value)`` for every ``*_seconds`` numeric leaf."""
    if isinstance(node, dict):
        for key, value in sorted(node.items()):
            child = f"{path}.{key}" if path else str(key)
            if isinstance(value, (int, float)) and str(key).endswith("_seconds"):
                yield child, float(value)
            else:
                yield from _timing_leaves(value, child)
    elif isinstance(node, list):
        for index, value in enumerate(node):
            yield from _timing_leaves(value, f"{path}[{index}]")


def compare(baseline: dict, candidate: dict, *, threshold: float) -> tuple[list[str], list[str]]:
    """Return (report lines, regression lines)."""
    base = dict(_timing_leaves(baseline))
    cand = dict(_timing_leaves(candidate))
    lines: list[str] = []
    regressions: list[str] = []
    for path in sorted(base):
        if path not in cand:
            lines.append(f"  {path}: missing from candidate")
            continue
        old, new = base[path], cand[path]
        if old <= 0:
            continue
        ratio = new / old
        marker = ""
        if ratio > 1.0 + threshold:
            marker = "  <-- REGRESSION"
            regressions.append(f"{path}: {old*1e3:.3f} ms -> {new*1e3:.3f} ms ({ratio:.2f}x)")
        lines.append(
            f"  {path}: {old*1e3:8.3f} ms -> {new*1e3:8.3f} ms ({ratio:5.2f}x){marker}"
        )
    only_candidate = sorted(set(cand) - set(base))
    for path in only_candidate:
        lines.append(f"  {path}: new metric ({cand[path]*1e3:.3f} ms)")
    return lines, regressions


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", help="baseline BENCH_*.json")
    parser.add_argument("candidate", help="candidate BENCH_*.json")
    parser.add_argument("--threshold", type=float, default=0.10,
                        help="allowed slowdown fraction before failing (default 0.10)")
    args = parser.parse_args(argv)

    with open(args.baseline) as handle:
        baseline = json.load(handle)
    with open(args.candidate) as handle:
        candidate = json.load(handle)

    lines, regressions = compare(baseline, candidate, threshold=args.threshold)
    print(f"comparing {args.baseline} (baseline) vs {args.candidate} (candidate)")
    for line in lines:
        print(line)
    if regressions:
        print(f"\nFAIL: {len(regressions)} timing(s) regressed more than "
              f"{args.threshold:.0%}:")
        for regression in regressions:
            print(f"  {regression}")
        return 1
    print(f"\nOK: no timing regressed more than {args.threshold:.0%}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
