"""Tests of the run records (history and result objects)."""

import pytest

from repro.core.config import GAConfig
from repro.core.history import GAResult, GenerationRecord, RunHistory
from repro.core.individual import HaplotypeIndividual


def _record(generation, best, immigrants=False):
    return GenerationRecord(
        generation=generation,
        n_evaluations=generation * 10,
        best_fitness_per_size={2: best, 3: best * 2},
        mean_fitness_per_size={2: best / 2, 3: best},
        mutation_rates={"point_mutation": 0.5},
        crossover_rates={"intra_population_crossover": 0.9},
        stagnation=0,
        n_insertions=3,
        immigrants_triggered=immigrants,
    )


class TestRunHistory:
    def test_accumulates_records(self):
        history = RunHistory()
        history.append(_record(1, 5.0))
        history.append(_record(2, 6.0, immigrants=True))
        assert len(history) == 2
        assert history[0].generation == 1
        assert [r.generation for r in history] == [1, 2]
        assert history.records[1].immigrants_triggered

    def test_trajectories(self):
        history = RunHistory()
        for g, best in enumerate((5.0, 6.0, 6.5), start=1):
            history.append(_record(g, best))
        assert history.best_fitness_trajectory(2) == [5.0, 6.0, 6.5]
        assert history.best_fitness_trajectory(3) == [10.0, 12.0, 13.0]
        assert history.evaluations_trajectory() == [10, 20, 30]
        assert history.n_immigrant_triggers() == 0


class TestGAResult:
    @pytest.fixture()
    def result(self):
        history = RunHistory()
        history.append(_record(1, 5.0))
        return GAResult(
            best_per_size={
                2: HaplotypeIndividual((1, 2), 8.0),
                3: HaplotypeIndividual((1, 2, 3), 20.0),
            },
            evaluations_to_best={2: 50, 3: 120},
            n_evaluations=200,
            n_generations=10,
            termination_reason="stagnation",
            history=history,
            config=GAConfig(population_size=20, max_haplotype_size=3),
            elapsed_seconds=1.5,
        )

    def test_accessors(self, result):
        assert result.best_fitness(3) == pytest.approx(20.0)
        assert result.best_overall().snps == (1, 2, 3)

    def test_summary_rows(self, result):
        rows = result.summary_rows()
        assert [row["size"] for row in rows] == [2, 3]
        assert rows[0]["haplotype"] == "1 2"
        assert rows[1]["evaluations_to_best"] == 120

    def test_empty_result_rejected_by_best_overall(self, result):
        empty = GAResult(
            best_per_size={},
            evaluations_to_best={},
            n_evaluations=0,
            n_generations=0,
            termination_reason="max_generations",
            history=RunHistory(),
            config=result.config,
            elapsed_seconds=0.0,
        )
        with pytest.raises(ValueError):
            empty.best_overall()
