"""Edge-case tests of EvaluationStats merge/copy/since — the counter parity
backbone the work-stealing dispatch path must preserve."""

import threading

import pytest

from repro.parallel.base import EvaluationStats


def _filled(scale: int = 1) -> EvaluationStats:
    return EvaluationStats(
        n_evaluations=3 * scale,
        n_requests=10 * scale,
        n_batches=2 * scale,
        n_dedup_hits=4 * scale,
        n_cache_hits=3 * scale,
        total_seconds=0.5 * scale,
        backend_seconds=0.25 * scale,
        n_worker_deaths=1 * scale,
        n_chunks_replayed=2 * scale,
        n_worker_respawns=1 * scale,
    )


class TestMerge:
    def test_merge_empty_into_empty(self):
        stats = EvaluationStats()
        stats.merge(EvaluationStats())
        assert stats == EvaluationStats()

    def test_merge_empty_is_identity(self):
        stats = _filled()
        stats.merge(EvaluationStats())
        assert stats == _filled()

    def test_merge_into_empty_copies_everything(self):
        stats = EvaluationStats()
        stats.merge(_filled())
        assert stats == _filled()

    def test_merge_accumulates_all_fields(self):
        stats = _filled()
        stats.merge(_filled(2))
        assert stats == _filled(3)

    def test_merge_after_copy_leaves_the_copy_alone(self):
        stats = _filled()
        snapshot = stats.copy()
        stats.merge(_filled())
        assert snapshot == _filled()
        assert stats.n_requests == 2 * snapshot.n_requests

    def test_copy_is_independent_both_ways(self):
        stats = EvaluationStats()
        snapshot = stats.copy()
        snapshot.merge(_filled())
        assert stats == EvaluationStats()


class TestSince:
    def test_since_self_snapshot_is_zero(self):
        stats = _filled()
        assert stats.since(stats.copy()) == EvaluationStats()

    def test_since_empty_snapshot_is_everything(self):
        stats = _filled()
        assert stats.since(EvaluationStats()) == _filled()

    def test_since_scopes_exactly_the_delta(self):
        stats = _filled()
        before = stats.copy()
        stats.record_batch(5, 0.1, n_requests=8, n_dedup_hits=2, n_cache_hits=1,
                           backend_seconds=0.05)
        delta = stats.since(before)
        assert delta.n_evaluations == 5
        assert delta.n_requests == 8
        assert delta.n_batches == 1
        assert delta.n_dedup_hits == 2
        assert delta.n_cache_hits == 1
        assert delta.total_seconds == pytest.approx(0.1)
        assert delta.backend_seconds == pytest.approx(0.05)

    def test_since_scopes_recovery_counters(self):
        stats = _filled()
        before = stats.copy()
        stats.record_batch(
            5, 0.1, n_worker_deaths=2, n_chunks_replayed=3, n_worker_respawns=1
        )
        delta = stats.since(before)
        assert delta.n_worker_deaths == 2
        assert delta.n_chunks_replayed == 3
        assert delta.n_worker_respawns == 1

    def test_reuse_rate_of_empty_stats_is_zero(self):
        assert EvaluationStats().reuse_rate == 0.0
        assert EvaluationStats().mean_seconds_per_evaluation == 0.0
        assert EvaluationStats().mean_seconds_per_request == 0.0


class TestCountersContract:
    def test_counters_exclude_recovery_and_timing_fields(self):
        """counters() is the cross-backend parity contract: recovery events
        (like timings and stacked-EM counters) depend on *which* run survived
        a fault, not on the workload, so they must never enter it."""
        stats = _filled()
        counters = stats.counters()
        assert counters == {
            "n_requests": stats.n_requests,
            "n_evaluations": stats.n_evaluations,
            "n_batches": stats.n_batches,
            "n_dedup_hits": stats.n_dedup_hits,
            "n_cache_hits": stats.n_cache_hits,
        }
        for excluded in ("n_worker_deaths", "n_chunks_replayed", "n_worker_respawns"):
            assert excluded not in counters

    def test_recovery_counters_agree_between_faulty_and_clean_contract(self):
        clean = _filled()
        faulty = _filled()
        faulty.record_batch(0, 0.0, n_worker_deaths=3, n_chunks_replayed=4,
                            n_worker_respawns=2)
        faulty.n_batches -= 1  # undo the bookkeeping batch
        assert faulty.counters() == clean.counters()
        assert faulty != clean


class TestConcurrentJobScoping:
    def test_per_job_deltas_sum_to_substrate_total(self, small_dataset):
        """Concurrent jobs on one scheduler: each job's delta-scoped stats must
        partition the substrate's counters exactly (nothing lost, nothing
        double-counted) — the invariant the steal path leans on."""
        from repro.core.config import GAConfig
        from repro.runtime.service import RunRequest, RunScheduler

        config = GAConfig(
            population_size=12, max_haplotype_size=3,
            termination_stagnation=2, max_generations=3,
        )
        with RunScheduler(small_dataset, jobs=3) as scheduler:
            for i in range(6):
                scheduler.submit(RunRequest(config=config, seed=50 + i))
            results = [result for _job, result in scheduler.as_completed()]
            total = scheduler.stats
        assert sum(r.stats.n_requests for r in results) == total.n_requests
        assert sum(r.stats.n_evaluations for r in results) == total.n_evaluations
        assert sum(r.stats.n_batches for r in results) == total.n_batches
        assert (
            sum(r.stats.n_dedup_hits + r.stats.n_cache_hits for r in results)
            == total.n_dedup_hits + total.n_cache_hits
        )

    def test_interleaved_threads_delta_scope_without_loss(self):
        """since()-based delta scoping under raw thread interleaving."""
        from repro.parallel.serial import SerialEvaluator

        evaluator = SerialEvaluator(lambda snps: float(sum(snps)),
                                    dedup=False, cache_size=0)
        lock = threading.Lock()
        deltas = []

        def job(offset: int) -> None:
            local = EvaluationStats()
            for i in range(25):
                with lock:
                    before = evaluator.stats.copy()
                    evaluator.evaluate_batch([(offset + i,), (offset + i, offset + i + 1)])
                    local.merge(evaluator.stats.since(before))
            deltas.append(local)

        threads = [threading.Thread(target=job, args=(1000 * t,)) for t in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert sum(d.n_requests for d in deltas) == evaluator.stats.n_requests == 200
        assert sum(d.n_evaluations for d in deltas) == evaluator.stats.n_evaluations
        assert sum(d.n_batches for d in deltas) == evaluator.stats.n_batches == 100
