"""EH-DIALL: estimated-haplotype analysis of a group of individuals.

EH-DIALL (the "EH" program of Terwilliger & Ott, as used by the paper) takes
the genotypes of a sample of individuals at the SNPs of a candidate haplotype
and

1. estimates per-marker allele frequencies,
2. estimates haplotype frequencies **without** allelic association
   (hypothesis ``H0``: every haplotype frequency is the product of its allele
   frequencies), and
3. estimates haplotype frequencies **with** allelic association
   (hypothesis ``H1``: frequencies free on the simplex, fitted by the EM of
   :mod:`repro.stats.em`),

reporting the log-likelihood of the data under both hypotheses and the
likelihood-ratio chi-square for association between the markers.

In the paper's evaluation pipeline (Figure 3), EH-DIALL is run independently
on the affected and unaffected groups; the estimated haplotype distributions
of the two runs are then concatenated into a contingency table for CLUMP.

Performance notes
-----------------
The expensive part of a run is the phase expansion and the EM over it, so the
module is split into two entry points: :func:`run_ehdiall` expands the
genotypes **once** (the seed expanded twice — once for the H0 likelihood and
once more inside the H1 EM) and delegates to :func:`ehdiall_from_expansion`,
which works entirely from a pre-computed — typically cached —
:class:`~repro.stats.em.PhaseExpansion` and accepts warm-start frequencies
for the EM.  The evaluation pipeline (:mod:`repro.stats.evaluation`) feeds it
cached per-group expansions and builds the pooled case+control run by
concatenating the group expansions instead of re-expanding.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..genetics.alleles import n_haplotype_states
from ..genetics.dataset import GenotypeDataset
from .chi2 import chi2_sf
from .em import (
    EMResult,
    PhaseExpansion,
    estimate_from_expansion,
    expand_phases,
    expansion_log_likelihood,
)

__all__ = ["EHDiallResult", "run_ehdiall", "ehdiall_from_expansion", "h0_frequencies"]


@dataclass(frozen=True)
class EHDiallResult:
    """Result of an EH-DIALL run on one group of individuals.

    Attributes
    ----------
    em:
        The H1 (association) EM fit.
    allele_frequencies:
        Per-locus frequency of allele ``2`` estimated from the same
        individuals (gene counting).
    h0_log_likelihood:
        Log-likelihood of the data under independence of the loci.
    h1_log_likelihood:
        Log-likelihood under the EM-fitted haplotype frequencies.
    lrt_statistic:
        ``2 * (h1 - h0)`` likelihood-ratio chi-square for allelic association.
    lrt_df:
        Degrees of freedom of the LRT: ``(2**L - 1) - L``.
    """

    em: EMResult
    allele_frequencies: np.ndarray
    h0_log_likelihood: float
    h1_log_likelihood: float
    lrt_statistic: float
    lrt_df: int

    @property
    def haplotype_frequencies(self) -> np.ndarray:
        """Estimated haplotype frequencies under H1."""
        return self.em.frequencies

    @property
    def n_individuals(self) -> int:
        return self.em.n_individuals

    @property
    def n_chromosomes(self) -> int:
        return self.em.n_chromosomes

    @property
    def lrt_p_value(self) -> float:
        return chi2_sf(self.lrt_statistic, self.lrt_df)

    def expected_haplotype_counts(self) -> np.ndarray:
        """Expected haplotype counts under H1 (frequencies × chromosomes)."""
        return self.em.expected_counts()


def h0_frequencies(allele_frequencies: np.ndarray) -> np.ndarray:
    """Haplotype frequencies under locus independence (H0).

    ``allele_frequencies[i]`` is the frequency of allele ``2`` at locus ``i``;
    the returned array has length ``2**L`` indexed by haplotype state.
    """
    allele_frequencies = np.asarray(allele_frequencies, dtype=np.float64)
    n_loci = allele_frequencies.shape[0]
    states = np.arange(n_haplotype_states(n_loci))
    freqs = np.ones(states.shape[0], dtype=np.float64)
    for locus in range(n_loci):
        carries_2 = (states >> locus) & 1
        p2 = allele_frequencies[locus]
        freqs *= np.where(carries_2 == 1, p2, 1.0 - p2)
    return freqs


def ehdiall_from_expansion(
    expansion: PhaseExpansion,
    *,
    max_iter: int = 200,
    tol: float = 1e-8,
    initial_frequencies: np.ndarray | None = None,
) -> EHDiallResult:
    """Run EH-DIALL from a pre-computed (typically cached) phase expansion.

    Parameters
    ----------
    expansion:
        Phase expansion of the group's genotypes at the candidate SNPs; must
        carry ``class_genotypes`` (expansions from
        :func:`~repro.stats.em.expand_phases` and
        :func:`~repro.stats.em.concat_expansions` do).
    max_iter, tol:
        EM control parameters.
    initial_frequencies:
        Optional warm start for the H1 EM (e.g. the count-weighted mix of the
        two group solutions when pooling case and control samples, or the
        final frequencies of an earlier run of the same haplotype).
    """
    allele_freqs = expansion.allele_frequencies()
    em = estimate_from_expansion(
        expansion, initial_frequencies=initial_frequencies, max_iter=max_iter, tol=tol
    )
    if expansion.n_individuals > 0 and not np.any(np.isnan(allele_freqs)):
        h0 = expansion_log_likelihood(expansion, h0_frequencies(allele_freqs))
    else:
        h0 = 0.0
    h1 = em.log_likelihood
    n_loci = expansion.n_loci
    lrt_df = max(n_haplotype_states(n_loci) - 1 - n_loci, 0)
    lrt = max(2.0 * (h1 - h0), 0.0)
    return EHDiallResult(
        em=em,
        allele_frequencies=allele_freqs,
        h0_log_likelihood=h0,
        h1_log_likelihood=h1,
        lrt_statistic=lrt,
        lrt_df=lrt_df,
    )


def run_ehdiall(
    source: GenotypeDataset | np.ndarray,
    snps: Sequence[int] | np.ndarray | None = None,
    *,
    max_iter: int = 200,
    tol: float = 1e-8,
) -> EHDiallResult:
    """Run EH-DIALL on one group of individuals.

    Parameters
    ----------
    source:
        Either a :class:`GenotypeDataset` (in which case ``snps`` selects the
        haplotype's SNP columns) or a pre-extracted ``(n_individuals, L)``
        genotype array.
    snps:
        SNP column indices of the candidate haplotype (required when
        ``source`` is a dataset).
    max_iter, tol:
        EM control parameters.
    """
    if isinstance(source, GenotypeDataset):
        if snps is None:
            raise ValueError("snps must be provided when source is a GenotypeDataset")
        genotypes = source.genotypes_at(np.asarray(snps, dtype=np.intp))
    else:
        genotypes = np.asarray(source)
        if snps is not None:
            genotypes = genotypes[:, np.asarray(snps, dtype=np.intp)]

    expansion = expand_phases(genotypes)
    return ehdiall_from_expansion(expansion, max_iter=max_iter, tol=tol)
