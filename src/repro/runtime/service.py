"""The synchronous run service: one front door for executing GA runs.

``RunRequest`` describes *what* to run (GA configuration, number of repeated
runs, fitness statistic) and *how* to run it (execution backend, worker
count, chunking, caching policy); :class:`RunService` owns a dataset,
resolves the backend through the registry, executes the runs and returns a
:class:`RunResult` carrying the per-run :class:`~repro.core.history.GAResult`
objects plus the merged :class:`~repro.parallel.base.EvaluationStats`.

The CLI ``run`` command and the Table-2 / ablation / speedup harnesses all
route through this service, so backend choice, seeding, caching policy and
stats reporting live in exactly one place.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ..core.config import GAConfig
from ..core.ga import AdaptiveMultiPopulationGA
from ..core.history import GAResult
from ..core.individual import HaplotypeIndividual
from ..genetics.constraints import HaplotypeConstraints
from ..genetics.dataset import GenotypeDataset
from ..parallel.base import BaseBatchEvaluator, EvaluationStats
from .backends import DEFAULT_BACKEND, create_evaluator
from .spec import EvaluatorSpec

__all__ = ["RunRequest", "RunResult", "RunService"]


@dataclass(frozen=True)
class RunRequest:
    """A declarative description of one (possibly repeated) GA execution.

    Attributes
    ----------
    config:
        GA parameters (default: the paper's :class:`GAConfig` defaults).
    n_runs:
        Number of independent runs; run ``i`` uses seed ``seed + i``.
    seed:
        Base seed; ``None`` uses ``config.seed``.
    statistic:
        CLUMP statistic optimised as fitness (ignored when ``spec`` given).
    spec:
        Full evaluator recipe; overrides ``statistic``.
    backend:
        Execution-backend name (see :func:`repro.runtime.backends.backend_names`).
    n_workers, chunk_size:
        Parallel-backend sizing (ignored by ``serial``).
    dedup, cache_size, worker_cache_size:
        Batch fast-path policy for the backend evaluator.
    constraints:
        Haplotype-validity constraints (default: unconstrained).
    """

    config: GAConfig | None = None
    n_runs: int = 1
    seed: int | None = None
    statistic: str = "t1"
    spec: EvaluatorSpec | None = None
    backend: str = DEFAULT_BACKEND
    n_workers: int | None = None
    chunk_size: int | None = None
    dedup: bool = True
    cache_size: int | None = BaseBatchEvaluator.DEFAULT_CACHE_SIZE
    worker_cache_size: int | None = BaseBatchEvaluator.DEFAULT_CACHE_SIZE
    constraints: HaplotypeConstraints | None = None

    def resolved_spec(self) -> EvaluatorSpec:
        return self.spec if self.spec is not None else EvaluatorSpec(statistic=self.statistic)


@dataclass(frozen=True)
class RunResult:
    """Outcome of a :class:`RunRequest`.

    Attributes
    ----------
    runs:
        The per-run GA results, in seed order.
    stats:
        Backend evaluation stats merged over all runs (requests vs
        evaluations actually performed, reuse, timings).
    backend:
        Name of the execution backend used.
    elapsed_seconds:
        Wall-clock time of the whole request.
    """

    runs: tuple[GAResult, ...]
    stats: EvaluationStats
    backend: str
    elapsed_seconds: float
    request: RunRequest = field(repr=False, default_factory=RunRequest)

    @property
    def result(self) -> GAResult:
        """The first run's result (the common single-run case)."""
        return self.runs[0]

    @property
    def n_evaluations(self) -> int:
        """Total fitness requests across runs (the paper's cost metric)."""
        return sum(run.n_evaluations for run in self.runs)

    @property
    def reuse_rate(self) -> float:
        """Fraction of requests answered without evaluating (dedup + caches)."""
        return self.stats.reuse_rate

    def best_per_size(self) -> dict[int, HaplotypeIndividual]:
        """Best individual of every size across all runs."""
        best: dict[int, HaplotypeIndividual] = {}
        for run in self.runs:
            for size, individual in run.best_per_size.items():
                current = best.get(size)
                if current is None or individual.fitness_value() > current.fitness_value():
                    best[size] = individual
        return best

    def summary_line(self) -> str:
        """One-line account of the backend work (surfaced by the CLI)."""
        stats = self.stats
        return (
            f"evaluation backend: {self.backend} — {stats.n_requests} requests -> "
            f"{stats.n_evaluations} evaluations "
            f"({stats.reuse_rate:.1%} answered by dedup/caches)"
        )


class RunService:
    """Execute :class:`RunRequest` objects against one dataset.

    The service builds the backend evaluator once per request (workers are
    started once, shared by every run of the request, and always released —
    the farm cannot leak), and snapshots the evaluator's stats around the
    runs so the result reports exactly the work of this request.
    """

    def __init__(self, dataset: GenotypeDataset) -> None:
        self._dataset = dataset
        self._local_evaluators: dict[EvaluatorSpec, object] = {}

    @property
    def dataset(self) -> GenotypeDataset:
        return self._dataset

    def local_evaluator(self, request: RunRequest):
        """A master-side in-process evaluator matching the request's spec.

        Memoised per spec, so repeated requests (e.g. one per ablation
        scheme) share the evaluator's internal reuse caches exactly like the
        pre-service harnesses did.
        """
        spec = request.resolved_spec()
        evaluator = self._local_evaluators.get(spec)
        if evaluator is None:
            evaluator = spec.build(self._dataset)
            self._local_evaluators[spec] = evaluator
        return evaluator

    def run(self, request: RunRequest) -> RunResult:
        if request.n_runs < 1:
            raise ValueError("n_runs must be positive")
        start = time.perf_counter()
        config = request.config or GAConfig()
        base_seed = config.seed if request.seed is None else request.seed
        constraints = request.constraints or HaplotypeConstraints.unconstrained(
            self._dataset.n_snps
        )
        # the in-process backends wrap the memoised local evaluator (shared
        # reuse caches across requests); the process backends derive their
        # worker-side spec from it
        evaluator = create_evaluator(
            request.backend,
            self.local_evaluator(request),
            dataset=self._dataset,
            n_workers=request.n_workers,
            chunk_size=request.chunk_size,
            dedup=request.dedup,
            cache_size=request.cache_size,
            worker_cache_size=request.worker_cache_size,
        )
        runs: list[GAResult] = []
        before = evaluator.stats.copy()
        try:
            for run_index in range(request.n_runs):
                ga = AdaptiveMultiPopulationGA(
                    n_snps=self._dataset.n_snps,
                    config=config.with_seed(base_seed + run_index),
                    constraints=constraints,
                    evaluator=evaluator,
                )
                runs.append(ga.run())
            stats = evaluator.stats.since(before)
        finally:
            evaluator.close()
        return RunResult(
            runs=tuple(runs),
            stats=stats,
            backend=request.backend,
            elapsed_seconds=time.perf_counter() - start,
            request=request,
        )
