"""Tests of the RunRequest -> RunResult service."""

import pytest

from repro.core.config import GAConfig
from repro.runtime.service import RunRequest, RunService


@pytest.fixture(scope="module")
def quick_config():
    return GAConfig(
        population_size=16,
        max_haplotype_size=3,
        termination_stagnation=3,
        max_generations=5,
    )


class TestRunService:
    def test_single_run(self, small_dataset, quick_config):
        service = RunService(small_dataset)
        result = service.run(RunRequest(config=quick_config, seed=1))
        assert result.backend == "serial"
        assert len(result.runs) == 1
        assert result.result.n_generations >= 1
        assert result.stats.n_requests == result.result.n_evaluations
        assert 0.0 <= result.reuse_rate < 1.0
        assert result.elapsed_seconds > 0.0

    def test_repeated_runs_are_seed_offset(self, small_dataset, quick_config):
        service = RunService(small_dataset)
        repeated = service.run(RunRequest(config=quick_config, seed=5, n_runs=2))
        single_a = service.run(RunRequest(config=quick_config, seed=5))
        single_b = service.run(RunRequest(config=quick_config, seed=6))
        assert len(repeated.runs) == 2
        assert repeated.runs[0].best_per_size == single_a.result.best_per_size
        assert repeated.runs[1].best_per_size == single_b.result.best_per_size
        assert repeated.n_evaluations == sum(r.n_evaluations for r in repeated.runs)

    def test_stats_are_request_scoped(self, small_dataset, quick_config):
        service = RunService(small_dataset)
        first = service.run(RunRequest(config=quick_config, seed=1))
        second = service.run(RunRequest(config=quick_config, seed=1))
        # each result reports only its own request's work
        assert second.stats.n_requests == first.stats.n_requests

    def test_best_per_size_aggregates_over_runs(self, small_dataset, quick_config):
        service = RunService(small_dataset)
        result = service.run(RunRequest(config=quick_config, seed=3, n_runs=2))
        best = result.best_per_size()
        for size, individual in best.items():
            assert len(individual.snps) == size
            for run in result.runs:
                contender = run.best_per_size.get(size)
                if contender is not None:
                    assert individual.fitness_value() >= contender.fitness_value() - 1e-12

    def test_backend_invariance(self, small_dataset, quick_config):
        serial = RunService(small_dataset).run(RunRequest(config=quick_config, seed=2))
        threaded = RunService(small_dataset).run(
            RunRequest(config=quick_config, seed=2, backend="threads", n_workers=2)
        )
        assert threaded.backend == "threads"
        assert serial.result.best_per_size == threaded.result.best_per_size
        assert serial.result.n_evaluations == threaded.result.n_evaluations

    def test_summary_line_surfaces_reuse(self, small_dataset, quick_config):
        result = RunService(small_dataset).run(RunRequest(config=quick_config, seed=1))
        line = result.summary_line()
        assert "requests" in line and "evaluations" in line and "serial" in line

    def test_validation(self, small_dataset, quick_config):
        with pytest.raises(ValueError):
            RunService(small_dataset).run(RunRequest(config=quick_config, n_runs=0))

    def test_local_evaluator_memoised_per_spec(self, small_dataset):
        service = RunService(small_dataset)
        a = service.local_evaluator(RunRequest())
        b = service.local_evaluator(RunRequest())
        c = service.local_evaluator(RunRequest(statistic="t2"))
        assert a is b
        assert c is not a
