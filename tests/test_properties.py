"""Cross-module consistency and invariance properties.

These tests tie independent implementations of the same quantity to each
other (e.g. the specialised two-locus EM used for LD against the general
multi-locus EM used by EH-DIALL) and check invariances that any correct
implementation of the pipeline must satisfy (permutation of individuals,
ordering of SNPs, relabelling of contingency-table columns).
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.genetics.dataset import GenotypeDataset
from repro.genetics.ld import two_locus_haplotype_frequencies
from repro.stats.chi2 import pearson_chi2
from repro.stats.clump import t1_statistic, t4_statistic
from repro.stats.contingency import ContingencyTable
from repro.stats.ehdiall import h0_frequencies
from repro.stats.em import estimate_haplotype_frequencies
from repro.stats.evaluation import HaplotypeEvaluator


def _random_genotypes(rng, n_individuals, n_loci, missing_rate=0.0):
    p = rng.uniform(0.2, 0.8, size=n_loci)
    h1 = (rng.random((n_individuals, n_loci)) < p).astype(np.int8)
    h2 = (rng.random((n_individuals, n_loci)) < p).astype(np.int8)
    genotypes = (h1 + h2).astype(np.int8)
    if missing_rate:
        mask = rng.random(genotypes.shape) < missing_rate
        genotypes = np.where(mask, -1, genotypes).astype(np.int8)
    return genotypes


class TestEMConsistency:
    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_two_locus_em_matches_general_em(self, seed):
        """ld.two_locus_haplotype_frequencies and stats.em agree on 2 loci."""
        rng = np.random.default_rng(seed)
        genotypes = _random_genotypes(rng, 60, 2, missing_rate=0.05)
        pair_freqs, n_chrom = two_locus_haplotype_frequencies(
            genotypes[:, 0], genotypes[:, 1], max_iter=500
        )
        em = estimate_haplotype_frequencies(genotypes, max_iter=500, tol=1e-12)
        # map the general EM's state indexing (bit i = allele 2 at locus i) onto
        # the (allele at locus 1, allele at locus 2) table of the two-locus EM
        general = np.array(
            [
                [em.frequencies[0], em.frequencies[2]],  # allele 1 at locus 0
                [em.frequencies[1], em.frequencies[3]],  # allele 2 at locus 0
            ]
        )
        if n_chrom == 0:
            return
        np.testing.assert_allclose(general, pair_freqs, atol=5e-3)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000), st.integers(min_value=2, max_value=5))
    def test_h0_frequencies_form_a_distribution(self, seed, n_loci):
        rng = np.random.default_rng(seed)
        freqs = h0_frequencies(rng.uniform(0.0, 1.0, size=n_loci))
        assert freqs.shape == (2**n_loci,)
        assert np.all(freqs >= 0)
        assert freqs.sum() == pytest.approx(1.0)


class TestEvaluationInvariances:
    def test_invariant_to_snp_order(self, small_evaluator, rng):
        for _ in range(3):
            snps = rng.choice(14, size=4, replace=False).tolist()
            shuffled = list(snps)
            rng.shuffle(shuffled)
            assert small_evaluator.evaluate(snps) == pytest.approx(
                small_evaluator.evaluate(shuffled)
            )

    def test_invariant_to_individual_permutation(self, small_dataset, rng):
        order = rng.permutation(small_dataset.n_individuals)
        permuted = small_dataset.select_individuals(order)
        a = HaplotypeEvaluator(small_dataset).evaluate((2, 5, 9))
        b = HaplotypeEvaluator(permuted).evaluate((2, 5, 9))
        assert a == pytest.approx(b, rel=1e-9)

    def test_snp_relabelling_does_not_change_fitness(self, small_dataset):
        """Evaluating columns (5, 9) equals evaluating the same columns after
        reordering the dataset's SNPs, with indices mapped accordingly."""
        reordered = small_dataset.select_snps([9, 5, 0, 1])
        a = HaplotypeEvaluator(small_dataset).evaluate((5, 9))
        b = HaplotypeEvaluator(reordered).evaluate((0, 1))
        assert a == pytest.approx(b, rel=1e-9)

    def test_swapping_case_control_labels_preserves_t1(self, small_dataset):
        """T1 is symmetric in the two rows of the table."""
        flipped_status = np.where(small_dataset.status == 1, 0, 1).astype(np.int8)
        flipped = GenotypeDataset(
            small_dataset.genotypes.copy(), flipped_status,
            snp_names=small_dataset.snp_names,
        )
        a = HaplotypeEvaluator(small_dataset).evaluate((2, 5, 9))
        b = HaplotypeEvaluator(flipped).evaluate((2, 5, 9))
        assert a == pytest.approx(b, rel=1e-9)


class TestContingencyInvariances:
    @settings(max_examples=30, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_statistics_invariant_to_column_permutation(self, seed):
        rng = np.random.default_rng(seed)
        counts = rng.integers(0, 30, size=(2, 8)).astype(float)
        if counts.sum(axis=1).min() == 0 or counts.sum() == 0:
            return
        table = ContingencyTable(counts)
        order = rng.permutation(8)
        permuted = ContingencyTable(counts[:, order])
        assert t1_statistic(table).statistic == pytest.approx(
            t1_statistic(permuted).statistic
        )
        assert t4_statistic(table).statistic == pytest.approx(
            t4_statistic(permuted).statistic
        )

    @settings(max_examples=30, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_chi2_scales_linearly_with_counts(self, seed):
        """Doubling every cell doubles the Pearson statistic (homogeneity)."""
        rng = np.random.default_rng(seed)
        counts = rng.integers(1, 30, size=(2, 5)).astype(float)
        base = pearson_chi2(ContingencyTable(counts)).statistic
        doubled = pearson_chi2(ContingencyTable(2 * counts)).statistic
        assert doubled == pytest.approx(2 * base, rel=1e-9)
