"""Tests of the single-population GA baseline."""

import pytest

from repro.search.simple_ga import SimpleGA


def _toy_fitness(snps):
    return float(100.0 - sum(snps))


class TestSimpleGA:
    def test_validation(self):
        with pytest.raises(ValueError):
            SimpleGA(_toy_fitness, n_snps=10, size=0)
        with pytest.raises(ValueError):
            SimpleGA(_toy_fitness, n_snps=10, size=2, population_size=1)
        with pytest.raises(ValueError):
            SimpleGA(_toy_fitness, n_snps=10, size=2, crossover_rate=1.5)
        with pytest.raises(ValueError):
            SimpleGA(_toy_fitness, n_snps=10, size=2, population_size=10, elitism=30)
        ga = SimpleGA(_toy_fitness, n_snps=10, size=2)
        with pytest.raises(ValueError):
            ga.run(n_generations=0)

    def test_optimises_toy_fitness(self):
        ga = SimpleGA(_toy_fitness, n_snps=12, size=3, population_size=20, elitism=2)
        result = ga.run(n_generations=30, seed=1)
        assert result.best_fitness >= _toy_fitness((2, 3, 4))
        assert len(result.best_snps) == 3
        assert result.n_evaluations == ga.n_evaluations
        assert result.evaluations_to_best <= result.n_evaluations

    def test_stagnation_stops_early(self):
        ga = SimpleGA(_toy_fitness, n_snps=8, size=2, population_size=10)
        result = ga.run(n_generations=200, stagnation=3, seed=0)
        assert result.n_generations < 200

    def test_determinism(self):
        runs = [
            SimpleGA(_toy_fitness, n_snps=12, size=3, population_size=15).run(
                n_generations=10, seed=7
            )
            for _ in range(2)
        ]
        assert runs[0].best_snps == runs[1].best_snps
        assert runs[0].n_evaluations == runs[1].n_evaluations

    def test_on_real_evaluator(self, small_evaluator):
        ga = SimpleGA(small_evaluator, n_snps=14, size=3, population_size=12)
        result = ga.run(n_generations=5, seed=2)
        assert len(result.best_snps) == 3
        assert result.best_fitness > 0.0
