"""EH-DIALL: estimated-haplotype analysis of a group of individuals.

EH-DIALL (the "EH" program of Terwilliger & Ott, as used by the paper) takes
the genotypes of a sample of individuals at the SNPs of a candidate haplotype
and

1. estimates per-marker allele frequencies,
2. estimates haplotype frequencies **without** allelic association
   (hypothesis ``H0``: every haplotype frequency is the product of its allele
   frequencies), and
3. estimates haplotype frequencies **with** allelic association
   (hypothesis ``H1``: frequencies free on the simplex, fitted by the EM of
   :mod:`repro.stats.em`),

reporting the log-likelihood of the data under both hypotheses and the
likelihood-ratio chi-square for association between the markers.

In the paper's evaluation pipeline (Figure 3), EH-DIALL is run independently
on the affected and unaffected groups; the estimated haplotype distributions
of the two runs are then concatenated into a contingency table for CLUMP.

Performance notes
-----------------
The expensive part of a run is the phase expansion and the EM over it, so the
module is split into two entry points: :func:`run_ehdiall` expands the
genotypes **once** (the seed expanded twice — once for the H0 likelihood and
once more inside the H1 EM) and delegates to :func:`ehdiall_from_expansion`,
which works entirely from a pre-computed — typically cached —
:class:`~repro.stats.em.PhaseExpansion` and accepts warm-start frequencies
for the EM.  The evaluation pipeline (:mod:`repro.stats.evaluation`) feeds it
cached per-group expansions and builds the pooled case+control run by
concatenating the group expansions instead of re-expanding.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..genetics.alleles import n_haplotype_states
from ..genetics.dataset import GenotypeDataset
from .chi2 import chi2_sf
from .em import (
    EMResult,
    PhaseExpansion,
    estimate_from_expansion,
    expand_phases,
    expansion_log_likelihood,
    run_em_stacked,
    stack_expansions,
)

__all__ = [
    "EHDiallResult",
    "run_ehdiall",
    "ehdiall_from_expansion",
    "ehdiall_batch",
    "h0_frequencies",
]


@dataclass(frozen=True)
class EHDiallResult:
    """Result of an EH-DIALL run on one group of individuals.

    Attributes
    ----------
    em:
        The H1 (association) EM fit.
    allele_frequencies:
        Per-locus frequency of allele ``2`` estimated from the same
        individuals (gene counting).
    h0_log_likelihood:
        Log-likelihood of the data under independence of the loci.
    h1_log_likelihood:
        Log-likelihood under the EM-fitted haplotype frequencies.
    lrt_statistic:
        ``2 * (h1 - h0)`` likelihood-ratio chi-square for allelic association.
    lrt_df:
        Degrees of freedom of the LRT: ``(2**L - 1) - L``.
    """

    em: EMResult
    allele_frequencies: np.ndarray
    h0_log_likelihood: float
    h1_log_likelihood: float
    lrt_statistic: float
    lrt_df: int

    @property
    def haplotype_frequencies(self) -> np.ndarray:
        """Estimated haplotype frequencies under H1."""
        return self.em.frequencies

    @property
    def n_individuals(self) -> int:
        return self.em.n_individuals

    @property
    def n_chromosomes(self) -> int:
        return self.em.n_chromosomes

    @property
    def lrt_p_value(self) -> float:
        return chi2_sf(self.lrt_statistic, self.lrt_df)

    def expected_haplotype_counts(self) -> np.ndarray:
        """Expected haplotype counts under H1 (frequencies × chromosomes)."""
        return self.em.expected_counts()


def h0_frequencies(allele_frequencies: np.ndarray) -> np.ndarray:
    """Haplotype frequencies under locus independence (H0).

    ``allele_frequencies[i]`` is the frequency of allele ``2`` at locus ``i``;
    the returned array has length ``2**L`` indexed by haplotype state.
    """
    allele_frequencies = np.asarray(allele_frequencies, dtype=np.float64)
    n_loci = allele_frequencies.shape[0]
    states = np.arange(n_haplotype_states(n_loci))
    freqs = np.ones(states.shape[0], dtype=np.float64)
    for locus in range(n_loci):
        carries_2 = (states >> locus) & 1
        p2 = allele_frequencies[locus]
        freqs *= np.where(carries_2 == 1, p2, 1.0 - p2)
    return freqs


def ehdiall_from_expansion(
    expansion: PhaseExpansion,
    *,
    max_iter: int = 200,
    tol: float = 1e-8,
    initial_frequencies: np.ndarray | None = None,
) -> EHDiallResult:
    """Run EH-DIALL from a pre-computed (typically cached) phase expansion.

    Parameters
    ----------
    expansion:
        Phase expansion of the group's genotypes at the candidate SNPs; must
        carry ``class_genotypes`` (expansions from
        :func:`~repro.stats.em.expand_phases` and
        :func:`~repro.stats.em.concat_expansions` do).
    max_iter, tol:
        EM control parameters.
    initial_frequencies:
        Optional warm start for the H1 EM (e.g. the count-weighted mix of the
        two group solutions when pooling case and control samples, or the
        final frequencies of an earlier run of the same haplotype).
    """
    em = estimate_from_expansion(
        expansion, initial_frequencies=initial_frequencies, max_iter=max_iter, tol=tol
    )
    return _assemble_result(expansion, em)


def _assemble_result(expansion: PhaseExpansion, em: EMResult) -> EHDiallResult:
    """Wrap a fitted H1 EM into the full EH-DIALL report (H0, LRT)."""
    allele_freqs = expansion.allele_frequencies()
    if expansion.n_individuals > 0 and not np.any(np.isnan(allele_freqs)):
        h0 = expansion_log_likelihood(expansion, h0_frequencies(allele_freqs))
    else:
        h0 = 0.0
    h1 = em.log_likelihood
    n_loci = expansion.n_loci
    lrt_df = max(n_haplotype_states(n_loci) - 1 - n_loci, 0)
    lrt = max(2.0 * (h1 - h0), 0.0)
    return EHDiallResult(
        em=em,
        allele_frequencies=allele_freqs,
        h0_log_likelihood=h0,
        h1_log_likelihood=h1,
        lrt_statistic=lrt,
        lrt_df=lrt_df,
    )


def ehdiall_batch(
    expansions: Sequence[PhaseExpansion],
    *,
    max_iter: int = 200,
    tol: float = 1e-8,
    initial_frequencies: "Sequence[np.ndarray | None] | None" = None,
) -> list[EHDiallResult]:
    """Run EH-DIALL on a batch of independent problems through one EM kernel call.

    The expensive part of each run — the iterated H1 EM — is stacked
    (:func:`~repro.stats.em.stack_expansions` +
    :func:`~repro.stats.em.run_em_stacked`) so the whole batch pays one numpy
    dispatch per EM operation; the one-shot H0 likelihood and the result
    assembly stay per-problem.  Every result is **bit-identical** to the
    corresponding :func:`ehdiall_from_expansion` call: the stacked kernel
    reproduces the scalar kernel's arithmetic exactly, so batching is purely
    a throughput decision and batch composition never changes a result.

    A batch of one delegates to the scalar path, and problems whose expansion
    does not support contiguous segmented reductions (possible only for
    hand-built expansions with empty classes — never those built by
    :func:`~repro.stats.em.expand_phases`) run scalar too, because the
    scalar kernel's ``bincount`` fallback and the stacked reduction are not
    bit-interchangeable.

    Parameters
    ----------
    expansions:
        Phase expansions of the problems (ragged: loci/class/pair counts and
        chromosome totals may all differ).
    max_iter, tol:
        EM control parameters, shared by the whole batch.
    initial_frequencies:
        Optional per-problem EM warm starts (``None`` entries mean uniform).
    """
    expansions = list(expansions)
    if initial_frequencies is not None and len(initial_frequencies) != len(expansions):
        raise ValueError(
            f"initial_frequencies must provide one entry per expansion "
            f"({len(expansions)}), got {len(initial_frequencies)}"
        )

    def scalar(index: int) -> EHDiallResult:
        initial = None if initial_frequencies is None else initial_frequencies[index]
        return ehdiall_from_expansion(
            expansions[index], max_iter=max_iter, tol=tol, initial_frequencies=initial
        )

    if len(expansions) < 2:
        return [scalar(i) for i in range(len(expansions))]

    stackable = [
        i
        for i, e in enumerate(expansions)
        if e.n_individuals == 0 or e.sorted_by_class()._can_reduceat
    ]
    stackable_set = set(stackable)
    results: list[EHDiallResult | None] = [None] * len(expansions)
    for i in range(len(expansions)):
        if i not in stackable_set:
            results[i] = scalar(i)
    if len(stackable) == 1:
        results[stackable[0]] = scalar(stackable[0])
    elif stackable:
        stacked = stack_expansions([expansions[i] for i in stackable])
        initials = (
            None
            if initial_frequencies is None
            else [initial_frequencies[i] for i in stackable]
        )
        ems = run_em_stacked(
            stacked, initial_frequencies=initials, max_iter=max_iter, tol=tol
        )
        for i, em in zip(stackable, ems):
            results[i] = _assemble_result(expansions[i], em)
    return results  # type: ignore[return-value]


def run_ehdiall(
    source: GenotypeDataset | np.ndarray,
    snps: Sequence[int] | np.ndarray | None = None,
    *,
    max_iter: int = 200,
    tol: float = 1e-8,
) -> EHDiallResult:
    """Run EH-DIALL on one group of individuals.

    Parameters
    ----------
    source:
        Either a :class:`GenotypeDataset` (in which case ``snps`` selects the
        haplotype's SNP columns) or a pre-extracted ``(n_individuals, L)``
        genotype array.
    snps:
        SNP column indices of the candidate haplotype (required when
        ``source`` is a dataset).
    max_iter, tol:
        EM control parameters.
    """
    if isinstance(source, GenotypeDataset):
        if snps is None:
            raise ValueError("snps must be provided when source is a GenotypeDataset")
        genotypes = source.genotypes_at(np.asarray(snps, dtype=np.intp))
    else:
        genotypes = np.asarray(source)
        if snps is not None:
            genotypes = genotypes[:, np.asarray(snps, dtype=np.intp)]

    expansion = expand_phases(genotypes)
    return ehdiall_from_expansion(expansion, max_iter=max_iter, tol=tol)
