"""Section 5.2 — comparison of the GA schemes (mechanism ablation).

The paper tests its GA "without and with the random immigrant, without and
with the reduction and the augmentation mutation, without and with the
inter-population crossover" and concludes that the mechanisms that link
sub-populations are efficient and allow better solutions, while the random
immigrant reintroduces diversity when the search is blocked.

This harness reruns that study as a controlled ablation: every scheme gets the
same evaluation budget and the same seeds, and is scored by the mean (over
runs and sub-populations) normalised best fitness it reaches, plus the raw
best fitness of the largest sub-population.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..core.config import GAConfig
from ..genetics.constraints import HaplotypeConstraints
from ..genetics.simulate import SimulatedStudy
from ..runtime.service import RunRequest, RunService
from .datasets import DEFAULT_SEED, lille51
from .reporting import format_table
from .table2 import quick_config

__all__ = ["AblationScheme", "SchemeOutcome", "AblationResult", "default_schemes", "run_ablation"]


@dataclass(frozen=True)
class AblationScheme:
    """One configuration of the Section-5.2 study."""

    name: str
    adaptive: bool
    size_mutations: bool
    inter_population_crossover: bool
    random_immigrants: bool

    def apply(self, base: GAConfig) -> GAConfig:
        return base.with_scheme(
            adaptive=self.adaptive,
            size_mutations=self.size_mutations,
            inter_population_crossover=self.inter_population_crossover,
            random_immigrants=self.random_immigrants,
        )


def default_schemes() -> tuple[AblationScheme, ...]:
    """The cumulative scheme ladder of the paper's Section 5.2 / Table 2."""
    return (
        AblationScheme(
            name="plain multi-population GA",
            adaptive=False, size_mutations=False,
            inter_population_crossover=False, random_immigrants=False,
        ),
        AblationScheme(
            name="+ adaptive operators",
            adaptive=True, size_mutations=False,
            inter_population_crossover=False, random_immigrants=False,
        ),
        AblationScheme(
            name="+ sub-population links (size mutations, inter-pop crossover)",
            adaptive=True, size_mutations=True,
            inter_population_crossover=True, random_immigrants=False,
        ),
        AblationScheme(
            name="+ random immigrants (full algorithm)",
            adaptive=True, size_mutations=True,
            inter_population_crossover=True, random_immigrants=True,
        ),
    )


@dataclass(frozen=True)
class SchemeOutcome:
    """Aggregate outcome of one scheme over the repeated runs."""

    scheme: AblationScheme
    mean_best_fitness_per_size: dict[int, float]
    max_best_fitness_per_size: dict[int, float]
    mean_evaluations: float
    mean_evaluations_to_best: float

    def mean_over_sizes(self) -> float:
        """Mean of the per-size mean best fitnesses (the scheme's headline score)."""
        return float(np.mean(list(self.mean_best_fitness_per_size.values())))

    def largest_size_fitness(self) -> float:
        largest = max(self.mean_best_fitness_per_size)
        return self.mean_best_fitness_per_size[largest]


@dataclass(frozen=True)
class AblationResult:
    """The full scheme-comparison study."""

    outcomes: tuple[SchemeOutcome, ...]
    n_runs: int
    config: GAConfig

    def outcome(self, name: str) -> SchemeOutcome:
        for outcome in self.outcomes:
            if outcome.scheme.name == name:
                return outcome
        raise KeyError(f"no scheme named {name!r}")

    def format(self) -> str:
        sizes = sorted(self.outcomes[0].mean_best_fitness_per_size)
        headers = ["Scheme", *[f"mean best (size {s})" for s in sizes],
                   "mean # eval to best"]
        rows = []
        for outcome in self.outcomes:
            rows.append(
                [
                    outcome.scheme.name,
                    *[outcome.mean_best_fitness_per_size.get(s, float("nan")) for s in sizes],
                    outcome.mean_evaluations_to_best,
                ]
            )
        return format_table(
            headers, rows,
            title=f"Section 5.2 - scheme comparison over {self.n_runs} runs",
        )


def run_ablation(
    *,
    study: SimulatedStudy | None = None,
    config: GAConfig | None = None,
    schemes: Sequence[AblationScheme] | None = None,
    n_runs: int = 3,
    constraints: HaplotypeConstraints | None = None,
    seed: int = DEFAULT_SEED,
    backend: str = "serial",
    n_workers: int | None = None,
    chunk_size: int | None = None,
) -> AblationResult:
    """Run the scheme-comparison study.

    Every scheme runs ``n_runs`` times with seeds ``seed … seed + n_runs - 1``
    under the same configuration except for the toggled mechanisms; every
    scheme is dispatched through the same execution backend
    (:mod:`repro.runtime.backends`), so the comparison stays controlled.
    """
    if n_runs < 1:
        raise ValueError("n_runs must be positive")
    study = study or lille51(seed)
    config = config or quick_config()
    schemes = tuple(schemes) if schemes is not None else default_schemes()
    n_snps = study.dataset.n_snps
    constraints = constraints or HaplotypeConstraints.unconstrained(n_snps)
    service = RunService(study.dataset)

    outcomes: list[SchemeOutcome] = []
    for scheme in schemes:
        scheme_config = scheme.apply(config)
        best_per_size: dict[int, list[float]] = {}
        total_evaluations: list[float] = []
        evaluations_to_best: list[float] = []
        scheme_runs = service.run(
            RunRequest(
                config=scheme_config,
                n_runs=n_runs,
                seed=seed,
                backend=backend,
                n_workers=n_workers,
                chunk_size=chunk_size,
                constraints=constraints,
            )
        ).runs
        for result in scheme_runs:
            total_evaluations.append(result.n_evaluations)
            if result.evaluations_to_best:
                evaluations_to_best.append(
                    float(np.mean(list(result.evaluations_to_best.values())))
                )
            for size, individual in result.best_per_size.items():
                best_per_size.setdefault(size, []).append(individual.fitness_value())
        outcomes.append(
            SchemeOutcome(
                scheme=scheme,
                mean_best_fitness_per_size={
                    size: float(np.mean(values)) for size, values in sorted(best_per_size.items())
                },
                max_best_fitness_per_size={
                    size: float(np.max(values)) for size, values in sorted(best_per_size.items())
                },
                mean_evaluations=float(np.mean(total_evaluations)),
                mean_evaluations_to_best=float(np.mean(evaluations_to_best))
                if evaluations_to_best
                else float("nan"),
            )
        )
    return AblationResult(outcomes=tuple(outcomes), n_runs=n_runs, config=config)
