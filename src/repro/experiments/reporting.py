"""Plain-text rendering of experiment results (paper-style tables)."""

from __future__ import annotations

from typing import Iterable, Sequence

__all__ = ["format_table", "format_number", "format_series"]


def format_number(value: object, *, decimals: int = 3) -> str:
    """Render a table cell: floats rounded, large integers with separators."""
    if value is None:
        return "-"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, int):
        return f"{value:,}" if abs(value) >= 10_000 else str(value)
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        if abs(value) >= 1e7 or (abs(value) < 1e-3 and value != 0):
            return f"{value:.3e}"
        return f"{value:.{decimals}f}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    *,
    title: str | None = None,
    decimals: int = 3,
) -> str:
    """Render rows as a fixed-width text table.

    Used by the experiment harnesses and the CLI to print tables shaped like
    the paper's (Table 1, Table 2, …) so measured and published numbers can be
    compared side by side.
    """
    rendered_rows = [[format_number(cell, decimals=decimals) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        if len(row) != len(headers):
            raise ValueError("every row must have one cell per header")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: list[str] = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header_line)
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered_rows:
        lines.append("  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_series(pairs: Iterable[tuple[object, object]], *, decimals: int = 3) -> str:
    """Render an (x, y) series as ``x -> y`` lines (for figure-style outputs)."""
    return "\n".join(
        f"{format_number(x, decimals=decimals)} -> {format_number(y, decimals=decimals)}"
        for x, y in pairs
    )
