"""Pearson chi-square helpers shared by CLUMP and the LD statistics."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats as _scipy_stats

from .contingency import ContingencyTable

__all__ = ["Chi2Result", "pearson_chi2", "chi2_sf"]


@dataclass(frozen=True)
class Chi2Result:
    """A chi-square statistic together with its degrees of freedom and p-value."""

    statistic: float
    df: int
    p_value: float

    def __float__(self) -> float:
        return self.statistic


def chi2_sf(statistic: float, df: int) -> float:
    """Survival function of the chi-square distribution (``P[X >= statistic]``)."""
    if df <= 0:
        return 1.0
    return float(_scipy_stats.chi2.sf(statistic, df))


def pearson_chi2(table: ContingencyTable | np.ndarray) -> Chi2Result:
    """Pearson chi-square statistic of a two-row contingency table.

    Columns with zero total are dropped first (they contribute nothing and
    would make the expected-count denominator vanish).  The degrees of freedom
    are ``(rows - 1) * (columns - 1)`` computed on the retained columns.
    """
    if not isinstance(table, ContingencyTable):
        table = ContingencyTable(np.asarray(table, dtype=np.float64))
    table = table.drop_empty_columns()
    observed = table.counts
    expected = table.expected()
    # rows with zero total contribute nothing; keep them but avoid dividing by 0
    with np.errstate(invalid="ignore", divide="ignore"):
        cells = np.where(expected > 0, (observed - expected) ** 2 / expected, 0.0)
    statistic = float(cells.sum())
    nonzero_rows = int(np.count_nonzero(table.row_totals > 0))
    df = max((nonzero_rows - 1) * (table.n_columns - 1), 0)
    return Chi2Result(statistic=statistic, df=df, p_value=chi2_sf(statistic, df))
