"""Case/control genotype dataset container.

The paper's experiments use a table of unphased SNP genotypes for a set of
individuals, each labelled *affected*, *unaffected* (healthy) or *unknown*
(Section 5: 176 individuals — 53 affected, 53 healthy, 70 unknown — of which
106 individuals × 51 SNPs are used for the reported study).

:class:`GenotypeDataset` is the single in-memory representation used by every
other subsystem: the EH-DIALL/CLUMP evaluation pipeline, the pairwise-LD
tables, the constraint checks and the GA itself all consume it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np

from .alleles import (
    GENOTYPE_MISSING,
    STATUS_AFFECTED,
    STATUS_UNAFFECTED,
    STATUS_UNKNOWN,
    validate_genotype_array,
)

__all__ = [
    "GenotypeDataset",
    "DatasetSummary",
    "LocusWindow",
    "WindowPlan",
    "plan_windows",
    "shard_dataset",
]


@dataclass(frozen=True)
class DatasetSummary:
    """Lightweight summary statistics of a :class:`GenotypeDataset`."""

    n_individuals: int
    n_snps: int
    n_affected: int
    n_unaffected: int
    n_unknown: int
    missing_rate: float

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{self.n_individuals} individuals x {self.n_snps} SNPs "
            f"({self.n_affected} affected, {self.n_unaffected} unaffected, "
            f"{self.n_unknown} unknown status, "
            f"{self.missing_rate:.2%} missing genotypes)"
        )


class GenotypeDataset:
    """Unphased case/control SNP genotype matrix.

    Parameters
    ----------
    genotypes:
        Integer array of shape ``(n_individuals, n_snps)`` with entries in
        ``{0, 1, 2, -1}`` (see :mod:`repro.genetics.alleles`).
    status:
        Integer array of length ``n_individuals`` with entries in
        ``{0 (unaffected), 1 (affected), -1 (unknown)}``.
    snp_names:
        Optional SNP identifiers; defaults to ``"snp0" … "snpN-1"``.
    individual_ids:
        Optional individual identifiers; defaults to ``"ind0" …``.
    """

    def __init__(
        self,
        genotypes: np.ndarray | Sequence[Sequence[int]],
        status: np.ndarray | Sequence[int],
        snp_names: Sequence[str] | None = None,
        individual_ids: Sequence[str] | None = None,
    ) -> None:
        geno = validate_genotype_array(np.asarray(genotypes))
        if geno.ndim != 2:
            raise ValueError(f"genotypes must be 2-D, got shape {geno.shape}")
        stat = np.asarray(status, dtype=np.int8)
        if stat.ndim != 1:
            raise ValueError("status must be a 1-D array")
        if stat.shape[0] != geno.shape[0]:
            raise ValueError(
                f"status length {stat.shape[0]} does not match "
                f"{geno.shape[0]} individuals"
            )
        valid_status = {STATUS_AFFECTED, STATUS_UNAFFECTED, STATUS_UNKNOWN}
        if not set(np.unique(stat).tolist()) <= valid_status:
            raise ValueError(f"status values must be in {sorted(valid_status)}")

        self._genotypes = geno
        self._status = stat

        if snp_names is None:
            snp_names = [f"snp{i}" for i in range(geno.shape[1])]
        if len(snp_names) != geno.shape[1]:
            raise ValueError("snp_names length does not match number of SNPs")
        if len(set(snp_names)) != len(snp_names):
            raise ValueError("snp_names must be unique")
        self._snp_names = tuple(str(s) for s in snp_names)

        if individual_ids is None:
            individual_ids = [f"ind{i}" for i in range(geno.shape[0])]
        if len(individual_ids) != geno.shape[0]:
            raise ValueError("individual_ids length does not match number of individuals")
        self._individual_ids = tuple(str(s) for s in individual_ids)

    # ------------------------------------------------------------------ #
    # basic accessors
    # ------------------------------------------------------------------ #
    @property
    def genotypes(self) -> np.ndarray:
        """The ``(n_individuals, n_snps)`` genotype matrix (read-only view)."""
        view = self._genotypes.view()
        view.flags.writeable = False
        return view

    @property
    def status(self) -> np.ndarray:
        """Per-individual disease status (read-only view)."""
        view = self._status.view()
        view.flags.writeable = False
        return view

    @property
    def snp_names(self) -> tuple[str, ...]:
        return self._snp_names

    @property
    def individual_ids(self) -> tuple[str, ...]:
        return self._individual_ids

    @property
    def n_individuals(self) -> int:
        return self._genotypes.shape[0]

    @property
    def n_snps(self) -> int:
        return self._genotypes.shape[1]

    def __len__(self) -> int:
        return self.n_individuals

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"GenotypeDataset(n_individuals={self.n_individuals}, n_snps={self.n_snps})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, GenotypeDataset):
            return NotImplemented
        return (
            np.array_equal(self._genotypes, other._genotypes)
            and np.array_equal(self._status, other._status)
            and self._snp_names == other._snp_names
            and self._individual_ids == other._individual_ids
        )

    # ------------------------------------------------------------------ #
    # group selectors
    # ------------------------------------------------------------------ #
    @property
    def affected_mask(self) -> np.ndarray:
        return self._status == STATUS_AFFECTED

    @property
    def unaffected_mask(self) -> np.ndarray:
        return self._status == STATUS_UNAFFECTED

    @property
    def unknown_mask(self) -> np.ndarray:
        return self._status == STATUS_UNKNOWN

    @property
    def n_affected(self) -> int:
        return int(np.count_nonzero(self.affected_mask))

    @property
    def n_unaffected(self) -> int:
        return int(np.count_nonzero(self.unaffected_mask))

    @property
    def n_unknown(self) -> int:
        return int(np.count_nonzero(self.unknown_mask))

    def affected(self) -> "GenotypeDataset":
        """Sub-dataset restricted to affected individuals."""
        return self.select_individuals(np.flatnonzero(self.affected_mask))

    def unaffected(self) -> "GenotypeDataset":
        """Sub-dataset restricted to unaffected individuals."""
        return self.select_individuals(np.flatnonzero(self.unaffected_mask))

    def with_known_status(self) -> "GenotypeDataset":
        """Sub-dataset restricted to individuals with known status."""
        return self.select_individuals(np.flatnonzero(~self.unknown_mask))

    # ------------------------------------------------------------------ #
    # subsetting
    # ------------------------------------------------------------------ #
    def select_individuals(self, indices: Iterable[int] | np.ndarray) -> "GenotypeDataset":
        """New dataset containing only the given individual row indices.

        When the indices form a contiguous ascending run the rows are taken
        as a basic slice — a *view* sharing the parent's memory rather than a
        fancy-indexed copy.  The shared-memory execution backend relies on
        this: its genotype store lays the rows out affected-first, so the
        per-group sub-datasets of every worker's evaluator are windows into
        the one shared matrix instead of per-process copies.
        """
        idx = np.asarray(list(indices), dtype=np.intp)
        if idx.size and idx[0] >= 0 and np.array_equal(idx, np.arange(idx[0], idx[0] + idx.size)):
            rows = slice(int(idx[0]), int(idx[0]) + idx.size)
            genotypes = self._genotypes[rows]
            status = self._status[rows]
        else:
            genotypes = self._genotypes[idx]
            status = self._status[idx]
        return GenotypeDataset(
            genotypes,
            status,
            snp_names=self._snp_names,
            individual_ids=[self._individual_ids[i] for i in idx],
        )

    def select_snps(self, indices: Iterable[int] | np.ndarray) -> "GenotypeDataset":
        """New dataset containing only the given SNP column indices (in the given order).

        Contiguous ascending runs are taken as a basic column slice — a
        *view* sharing the parent's memory — so locus windows carved out of a
        chromosome-scale panel (:func:`shard_dataset`) cost no genotype
        copies, mirroring what :meth:`select_individuals` does for rows.
        """
        idx = np.asarray(list(indices), dtype=np.intp)
        if idx.size and (idx.min() < 0 or idx.max() >= self.n_snps):
            raise IndexError(f"SNP index out of range [0, {self.n_snps})")
        if idx.size and np.array_equal(idx, np.arange(idx[0], idx[0] + idx.size)):
            columns = slice(int(idx[0]), int(idx[0]) + idx.size)
            genotypes = self._genotypes[:, columns]
        else:
            genotypes = self._genotypes[:, idx]
        return GenotypeDataset(
            genotypes,
            self._status,
            snp_names=[self._snp_names[i] for i in idx],
            individual_ids=self._individual_ids,
        )

    def window(self, start: int, stop: int) -> "GenotypeDataset":
        """Zero-copy view of the contiguous locus window ``[start, stop)``."""
        if not 0 <= start < stop <= self.n_snps:
            raise IndexError(
                f"window [{start}, {stop}) out of range for {self.n_snps} SNPs"
            )
        return self.select_snps(range(start, stop))

    def genotypes_at(self, snp_indices: Sequence[int] | np.ndarray) -> np.ndarray:
        """Genotype columns for the given SNP indices, shape ``(n_individuals, k)``."""
        idx = np.asarray(snp_indices, dtype=np.intp)
        return self._genotypes[:, idx]

    def snp_index(self, name: str) -> int:
        """Index of the SNP with the given name."""
        try:
            return self._snp_names.index(name)
        except ValueError:
            raise KeyError(f"unknown SNP name {name!r}") from None

    # ------------------------------------------------------------------ #
    # statistics
    # ------------------------------------------------------------------ #
    @property
    def missing_rate(self) -> float:
        """Fraction of genotype entries that are missing."""
        if self._genotypes.size == 0:
            return 0.0
        return float(np.count_nonzero(self._genotypes == GENOTYPE_MISSING)) / self._genotypes.size

    def summary(self) -> DatasetSummary:
        """Return a :class:`DatasetSummary` of this dataset."""
        return DatasetSummary(
            n_individuals=self.n_individuals,
            n_snps=self.n_snps,
            n_affected=self.n_affected,
            n_unaffected=self.n_unaffected,
            n_unknown=self.n_unknown,
            missing_rate=self.missing_rate,
        )

    def copy(self) -> "GenotypeDataset":
        """Deep copy of the dataset."""
        return GenotypeDataset(
            self._genotypes.copy(),
            self._status.copy(),
            snp_names=self._snp_names,
            individual_ids=self._individual_ids,
        )


# --------------------------------------------------------------------------- #
# locus windows: slicing a chromosome-scale panel into overlapping sub-panels
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class LocusWindow:
    """One contiguous locus window ``[start, stop)`` of a SNP panel.

    Windows are the unit of work of the genome-scale scan subsystem: each one
    is searched by an independent GA run over the window's sub-panel, and a
    haplotype found inside the window is reported in *global* panel indices
    (``start + local_index``).
    """

    index: int
    start: int
    stop: int

    def __post_init__(self) -> None:
        if self.index < 0:
            raise ValueError("window index must be non-negative")
        if not 0 <= self.start < self.stop:
            raise ValueError(f"invalid window bounds [{self.start}, {self.stop})")

    @property
    def size(self) -> int:
        """Number of loci in the window."""
        return self.stop - self.start

    @property
    def snp_indices(self) -> tuple[int, ...]:
        """Global panel indices covered by the window, in order."""
        return tuple(range(self.start, self.stop))

    def to_global(self, local_snps: Sequence[int]) -> tuple[int, ...]:
        """Translate window-local SNP indices to global panel indices."""
        out = []
        for snp in local_snps:
            snp = int(snp)
            if not 0 <= snp < self.size:
                raise IndexError(f"local SNP index {snp} outside window of size {self.size}")
            out.append(self.start + snp)
        return tuple(out)

    def span(self) -> str:
        """Human-readable ``start..stop-1`` locus span."""
        return f"{self.start}..{self.stop - 1}"


@dataclass(frozen=True)
class WindowPlan:
    """A tiling of an ``n_snps`` panel into overlapping locus windows.

    Built by :func:`plan_windows`; consumed by :func:`shard_dataset`, the
    sharded shared-memory store and the scan planner.  The plan guarantees
    full coverage: every locus belongs to at least one window, consecutive
    windows overlap by ``overlap`` loci (the final window may overlap more —
    it is anchored to the end of the panel rather than truncated).
    """

    n_snps: int
    window_size: int
    overlap: int
    windows: tuple[LocusWindow, ...]

    @property
    def n_windows(self) -> int:
        return len(self.windows)

    @property
    def stride(self) -> int:
        """Distance between consecutive window starts."""
        return self.window_size - self.overlap

    def __iter__(self):
        return iter(self.windows)

    def __len__(self) -> int:
        return self.n_windows

    def window_of(self, snp: int) -> tuple[LocusWindow, ...]:
        """Every window containing the given global SNP index."""
        if not 0 <= snp < self.n_snps:
            raise IndexError(f"SNP index {snp} out of range [0, {self.n_snps})")
        return tuple(w for w in self.windows if w.start <= snp < w.stop)


def plan_windows(n_snps: int, *, window_size: int, overlap: int = 0) -> WindowPlan:
    """Tile a panel of ``n_snps`` loci into overlapping windows.

    Windows start every ``window_size - overlap`` loci; the final window is
    anchored at ``n_snps - window_size`` so every window has exactly
    ``window_size`` loci and the panel is fully covered.
    """
    if n_snps < 1:
        raise ValueError("n_snps must be positive")
    if not 2 <= window_size <= n_snps:
        raise ValueError(
            f"window_size must be in [2, n_snps={n_snps}], got {window_size}"
        )
    if not 0 <= overlap < window_size:
        raise ValueError(
            f"overlap must be in [0, window_size), got {overlap} for window_size {window_size}"
        )
    stride = window_size - overlap
    starts = list(range(0, n_snps - window_size + 1, stride))
    if starts[-1] + window_size < n_snps:  # anchor a final window at the panel end
        starts.append(n_snps - window_size)
    windows = tuple(
        LocusWindow(index=i, start=start, stop=start + window_size)
        for i, start in enumerate(starts)
    )
    return WindowPlan(
        n_snps=n_snps, window_size=window_size, overlap=overlap, windows=windows
    )


def shard_dataset(
    dataset: GenotypeDataset, plan: WindowPlan
) -> tuple[GenotypeDataset, ...]:
    """Zero-copy window views of ``dataset``, one per window of ``plan``.

    Each returned dataset shares the parent's genotype buffer (basic column
    slicing — see :meth:`GenotypeDataset.select_snps`), so sharding a
    chromosome-scale panel into hundreds of windows costs no genotype copies.
    """
    if plan.n_snps != dataset.n_snps:
        raise ValueError(
            f"plan covers {plan.n_snps} SNPs but the dataset has {dataset.n_snps}"
        )
    return tuple(dataset.window(w.start, w.stop) for w in plan.windows)
