"""Baselines, exhaustive enumeration and landscape analysis (paper Section 3)."""

from .exhaustive import ScoredHaplotype, enumerate_best, enumerate_haplotypes, evaluate_all
from .landscape import (
    BuildingBlockReport,
    SizeFitnessSummary,
    building_block_analysis,
    fitness_scale_by_size,
    greedy_constructive_search,
)
from .local_search import HillClimbingResult, hill_climb, restarted_hill_climbing
from .random_search import RandomSearchResult, random_search
from .search_space import (
    PAPER_TABLE1_SIZES,
    PAPER_TABLE1_SNP_COUNTS,
    n_haplotypes_of_size,
    n_haplotypes_up_to_size,
    search_space_table,
)
from .simple_ga import SimpleGA, SimpleGAResult

__all__ = [
    "ScoredHaplotype",
    "enumerate_haplotypes",
    "evaluate_all",
    "enumerate_best",
    "random_search",
    "RandomSearchResult",
    "hill_climb",
    "restarted_hill_climbing",
    "HillClimbingResult",
    "SimpleGA",
    "SimpleGAResult",
    "SizeFitnessSummary",
    "BuildingBlockReport",
    "fitness_scale_by_size",
    "building_block_analysis",
    "greedy_constructive_search",
    "n_haplotypes_of_size",
    "n_haplotypes_up_to_size",
    "search_space_table",
    "PAPER_TABLE1_SNP_COUNTS",
    "PAPER_TABLE1_SIZES",
]
