"""Tests of the CLUMP statistics and their Monte-Carlo significance."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from scipy import stats as scipy_stats

from repro.stats.clump import (
    clump_statistics,
    monte_carlo_p_values,
    simulate_table_with_margins,
    t1_statistic,
    t2_statistic,
    t3_statistic,
    t4_statistic,
)
from repro.stats.contingency import ContingencyTable


@pytest.fixture()
def associated_table():
    # haplotype column 0 is clearly enriched in the affected row
    return ContingencyTable.from_rows(
        [40, 10, 5, 5], [10, 25, 15, 10], ["h0", "h1", "h2", "h3"]
    )


@pytest.fixture()
def null_table():
    return ContingencyTable.from_rows([20, 20, 20], [20, 20, 20])


class TestT1:
    def test_matches_scipy(self, associated_table):
        ours = t1_statistic(associated_table)
        scipy_stat, _, scipy_df, _ = scipy_stats.chi2_contingency(
            associated_table.counts, correction=False
        )
        assert ours.statistic == pytest.approx(scipy_stat)
        assert ours.df == scipy_df

    def test_null_table_is_zero(self, null_table):
        assert t1_statistic(null_table).statistic == pytest.approx(0.0)


class TestT2:
    def test_t2_pools_rare_columns(self):
        table = ContingencyTable.from_rows(
            [40, 30, 1, 0, 1], [20, 45, 0, 2, 1]
        )
        t2 = t2_statistic(table, min_expected=5.0)
        # pooling reduces the degrees of freedom below the raw table's
        assert t2.df < t1_statistic(table).df
        assert t2.statistic >= 0.0

    def test_t2_equals_t1_when_no_rare_columns(self, associated_table):
        assert t2_statistic(associated_table).statistic == pytest.approx(
            t1_statistic(associated_table).statistic
        )


class TestT3T4:
    def test_t3_is_max_single_column_chi2(self, associated_table):
        t3 = t3_statistic(associated_table)
        # manually compute the column-0-vs-rest 2x2 chi-square
        counts = associated_table.counts
        a, c = counts[0, 0], counts[1, 0]
        b, d = counts[0, 1:].sum(), counts[1, 1:].sum()
        manual = scipy_stats.chi2_contingency(
            np.array([[a, b], [c, d]]), correction=False
        )[0]
        assert t3.statistic >= manual - 1e-9
        assert t3.df == 1

    def test_t4_at_least_t3(self, associated_table):
        assert (
            t4_statistic(associated_table).statistic
            >= t3_statistic(associated_table).statistic - 1e-9
        )

    def test_t4_single_column_table(self):
        table = ContingencyTable.from_rows([10], [12])
        assert t4_statistic(table).statistic == pytest.approx(0.0)

    def test_t4_finds_the_two_group_split(self):
        # columns 0 and 1 are "risk" columns, 2 and 3 protective; the best
        # bipartition pools {0,1} vs {2,3} and beats any single column
        table = ContingencyTable.from_rows([30, 28, 5, 6], [10, 12, 25, 24])
        t4 = t4_statistic(table).statistic
        t3 = t3_statistic(table).statistic
        assert t4 > t3


class TestClumpStatistics:
    def test_statistic_lookup(self, associated_table):
        result = clump_statistics(associated_table)
        assert result.statistic("t1") == pytest.approx(result.t1.statistic)
        assert result.statistic("T4") == pytest.approx(result.t4.statistic)
        with pytest.raises(ValueError):
            result.statistic("t9")

    def test_association_scores_higher_than_null(self, associated_table, null_table):
        strong = clump_statistics(associated_table)
        weak = clump_statistics(null_table)
        for name in ("t1", "t2", "t3", "t4"):
            assert strong.statistic(name) >= weak.statistic(name)


class TestMonteCarlo:
    def test_simulated_tables_preserve_row_totals(self, associated_table, rng):
        simulated = simulate_table_with_margins(
            associated_table.row_totals,
            associated_table.column_totals / associated_table.total,
            rng,
        )
        np.testing.assert_allclose(simulated.row_totals, associated_table.row_totals)
        assert simulated.counts.shape == associated_table.counts.shape

    def test_pvalues_in_unit_interval_and_reproducible(self, associated_table):
        p1 = monte_carlo_p_values(associated_table, n_simulations=200, seed=1)
        p2 = monte_carlo_p_values(associated_table, n_simulations=200, seed=1)
        assert p1 == p2
        for value in p1.values():
            assert 0.0 < value <= 1.0

    def test_associated_table_is_significant(self, associated_table):
        p = monte_carlo_p_values(associated_table, n_simulations=300, seed=2)
        assert p["t1"] < 0.05

    def test_null_table_is_not_significant(self, null_table):
        p = monte_carlo_p_values(null_table, n_simulations=200, seed=3)
        assert p["t1"] > 0.5

    def test_invalid_inputs(self, associated_table, rng):
        with pytest.raises(ValueError):
            monte_carlo_p_values(associated_table, n_simulations=0)
        with pytest.raises(ValueError):
            simulate_table_with_margins(np.array([-1, 5]), np.array([0.5, 0.5]), rng)
        with pytest.raises(ValueError):
            simulate_table_with_margins(np.array([1, 5]), np.array([0.0, 0.0]), rng)


class TestStatisticsAreNonNegative:
    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(st.integers(min_value=0, max_value=40), min_size=2, max_size=8),
        st.lists(st.integers(min_value=0, max_value=40), min_size=2, max_size=8),
    )
    def test_all_statistics_non_negative(self, row_a, row_b):
        m = min(len(row_a), len(row_b))
        counts = np.array([row_a[:m], row_b[:m]], dtype=float)
        if counts.sum() == 0 or not (counts.sum(axis=0) > 0).any():
            return
        table = ContingencyTable(counts)
        try:
            result = clump_statistics(table)
        except ValueError:
            return  # fully empty table after dropping columns
        for name in ("t1", "t2", "t3", "t4"):
            assert result.statistic(name) >= 0.0
