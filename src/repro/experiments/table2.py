"""Table 2 — results of the GA on the 51-SNP dataset.

The paper's Table 2 reports, for each haplotype size (sub-population), the
best haplotype found over 10 runs, its fitness, the mean fitness over the
runs, the deviation from the best expected haplotype (0 when every run finds
the optimum) and the minimum / mean number of evaluations needed to reach the
solution — all with the full mechanism stack (adaptive mutation + adaptive
crossover + random immigrants).

This harness reruns that experiment on the lille-like dataset.  The reference
("best expected") haplotype of each size is obtained by exhaustive enumeration
where that is affordable (sizes 2-3 by default; the paper did the same
landscape enumeration for sizes 2-4) and as the best haplotype seen across all
runs for the larger sizes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..core.config import GAConfig
from ..core.history import GAResult
from ..genetics.constraints import HaplotypeConstraints
from ..genetics.simulate import SimulatedStudy
from ..runtime.service import RunRequest, RunService
from ..search.exhaustive import enumerate_best
from ..stats.cache import CachedEvaluator
from .datasets import DEFAULT_SEED, lille51
from .reporting import format_table

__all__ = [
    "PAPER_TABLE2_REFERENCE",
    "Table2Row",
    "Table2Result",
    "paper_scale_config",
    "quick_config",
    "run_table2",
]

#: The paper's Table 2 (size -> (best haplotype SNPs, fitness, mean # evaluations)).
#: Used only for side-by-side reporting in EXPERIMENTS.md; the SNP indices are
#: specific to the proprietary Lille dataset and are not expected to match.
PAPER_TABLE2_REFERENCE: dict[int, dict[str, object]] = {
    3: {"haplotype": (8, 12, 15), "fitness": 58.814, "min_evals": 317, "mean_evals": 587.4},
    4: {"haplotype": (8, 18, 26, 50), "fitness": 84.856, "min_evals": 1111, "mean_evals": 3238.2},
    5: {"haplotype": (8, 12, 16, 33, 43), "fitness": 123.108, "min_evals": 2994,
        "mean_evals": 5615.2},
    6: {"haplotype": (8, 12, 15, 21, 32, 43), "fitness": 161.252, "min_evals": 11573,
        "mean_evals": 15464.6},
}


def paper_scale_config(**overrides: object) -> GAConfig:
    """The configuration of the paper's experiment (Section 5.2.1)."""
    params: dict[str, object] = dict(
        population_size=150,
        min_haplotype_size=2,
        max_haplotype_size=6,
        crossover_rate=0.9,
        termination_stagnation=100,
        random_immigrant_stagnation=20,
        max_generations=600,
    )
    params.update(overrides)
    return GAConfig(**params)  # type: ignore[arg-type]


def quick_config(**overrides: object) -> GAConfig:
    """A reduced configuration for tests and CI-sized benchmark runs."""
    params: dict[str, object] = dict(
        population_size=60,
        min_haplotype_size=2,
        max_haplotype_size=5,
        crossover_rate=0.9,
        termination_stagnation=10,
        random_immigrant_stagnation=5,
        max_generations=40,
    )
    params.update(overrides)
    return GAConfig(**params)  # type: ignore[arg-type]


@dataclass(frozen=True)
class Table2Row:
    """One row of the reproduced Table 2 (one haplotype size)."""

    size: int
    best_snps: tuple[int, ...]
    best_fitness: float
    mean_fitness: float
    deviation: float
    min_evaluations: int
    mean_evaluations: float
    reference_snps: tuple[int, ...]
    reference_fitness: float
    reference_source: str
    n_runs_matching_reference: int


@dataclass(frozen=True)
class Table2Result:
    """The reproduced Table 2."""

    rows: tuple[Table2Row, ...]
    n_runs: int
    config: GAConfig
    run_results: tuple[GAResult, ...] = field(repr=False, default=())

    def row(self, size: int) -> Table2Row:
        for row in self.rows:
            if row.size == size:
                return row
        raise KeyError(f"no row for haplotype size {size}")

    def format(self) -> str:
        headers = [
            "Size",
            "Best haplotype",
            "Fitness",
            "Mean",
            "Dev",
            "Min # eval",
            "Mean # eval",
            "Reference",
        ]
        rows = [
            [
                row.size,
                " ".join(map(str, row.best_snps)),
                row.best_fitness,
                row.mean_fitness,
                row.deviation,
                row.min_evaluations,
                row.mean_evaluations,
                row.reference_source,
            ]
            for row in self.rows
        ]
        return format_table(
            headers, rows,
            title=f"Table 2 - GA results over {self.n_runs} runs (lille-like dataset)",
        )


def run_table2(
    *,
    study: SimulatedStudy | None = None,
    config: GAConfig | None = None,
    n_runs: int = 10,
    exhaustive_reference_sizes: Sequence[int] = (2, 3),
    constraints: HaplotypeConstraints | None = None,
    seed: int = DEFAULT_SEED,
    statistic: str = "t1",
    backend: str = "serial",
    n_workers: int | None = None,
    chunk_size: int | None = None,
) -> Table2Result:
    """Rerun the paper's Table 2 experiment.

    Parameters
    ----------
    study:
        Dataset (default: the canonical lille-like study).
    config:
        GA configuration (default: :func:`paper_scale_config`).
    n_runs:
        Number of independent GA runs (paper: 10).
    exhaustive_reference_sizes:
        Haplotype sizes whose reference optimum is computed by exhaustive
        enumeration; larger sizes use the best haplotype seen across runs.
    constraints:
        Optional haplotype-validity constraints shared by the GA and the
        exhaustive reference search.
    seed:
        Base seed; run ``i`` uses ``seed + i``.
    statistic:
        CLUMP statistic used as fitness.
    backend, n_workers, chunk_size:
        Execution backend the runs are dispatched on (see
        :mod:`repro.runtime.backends`); all backends return identical
        fitnesses, so the table is backend-invariant.
    """
    if n_runs < 1:
        raise ValueError("n_runs must be positive")
    study = study or lille51(seed)
    config = config or paper_scale_config()
    n_snps = study.dataset.n_snps
    constraints = constraints or HaplotypeConstraints.unconstrained(n_snps)

    service = RunService(study.dataset)
    request = RunRequest(
        config=config,
        n_runs=n_runs,
        seed=seed,
        statistic=statistic,
        backend=backend,
        n_workers=n_workers,
        chunk_size=chunk_size,
        constraints=constraints,
    )
    run_results: list[GAResult] = list(service.run(request).runs)
    evaluator = service.local_evaluator(request)

    sizes = sorted(
        {size for result in run_results for size in result.best_per_size}
    )

    # reference ("best expected") haplotype per size
    references: dict[int, tuple[tuple[int, ...], float, str]] = {}
    cached = CachedEvaluator(evaluator)
    for size in sizes:
        if size in set(exhaustive_reference_sizes):
            best = enumerate_best(cached, n_snps, size, constraints=constraints, top_k=1)[0]
            references[size] = (best.snps, best.fitness, "exhaustive")
        else:
            best_snps: tuple[int, ...] | None = None
            best_fitness = -np.inf
            for result in run_results:
                individual = result.best_per_size.get(size)
                if individual is not None and individual.fitness_value() > best_fitness:
                    best_snps = individual.snps
                    best_fitness = individual.fitness_value()
            assert best_snps is not None
            references[size] = (best_snps, float(best_fitness), "best_of_runs")

    rows: list[Table2Row] = []
    for size in sizes:
        per_run_fitness = []
        per_run_evaluations = []
        best_snps: tuple[int, ...] | None = None
        best_fitness = -np.inf
        for result in run_results:
            individual = result.best_per_size.get(size)
            if individual is None:
                continue
            per_run_fitness.append(individual.fitness_value())
            per_run_evaluations.append(result.evaluations_to_best.get(size,
                                                                      result.n_evaluations))
            if individual.fitness_value() > best_fitness:
                best_fitness = individual.fitness_value()
                best_snps = individual.snps
        reference_snps, reference_fitness, reference_source = references[size]
        mean_fitness = float(np.mean(per_run_fitness))
        matching = sum(
            1 for value in per_run_fitness if abs(value - reference_fitness) <= 1e-9
        )
        rows.append(
            Table2Row(
                size=size,
                best_snps=best_snps or (),
                best_fitness=float(best_fitness),
                mean_fitness=mean_fitness,
                deviation=float(reference_fitness - mean_fitness),
                min_evaluations=int(np.min(per_run_evaluations)),
                mean_evaluations=float(np.mean(per_run_evaluations)),
                reference_snps=reference_snps,
                reference_fitness=reference_fitness,
                reference_source=reference_source,
                n_runs_matching_reference=matching,
            )
        )
    return Table2Result(
        rows=tuple(rows),
        n_runs=n_runs,
        config=config,
        run_results=tuple(run_results),
    )
