"""Tests of the contingency-table container."""

import numpy as np
import pytest

from repro.stats.contingency import ContingencyTable


class TestConstruction:
    def test_from_rows(self):
        table = ContingencyTable.from_rows([1, 2, 3], [4, 5, 6], ["a", "b", "c"])
        assert table.n_columns == 3
        assert table.total == pytest.approx(21)
        np.testing.assert_allclose(table.row_totals, [6, 15])
        np.testing.assert_allclose(table.column_totals, [5, 7, 9])

    def test_rejects_wrong_shapes(self):
        with pytest.raises(ValueError):
            ContingencyTable(np.zeros((3, 4)))
        with pytest.raises(ValueError):
            ContingencyTable.from_rows([1, 2], [1])
        with pytest.raises(ValueError):
            ContingencyTable(np.array([[1.0, -2.0], [1.0, 1.0]]))
        with pytest.raises(ValueError):
            ContingencyTable(np.array([[1.0, np.inf], [1.0, 1.0]]))

    def test_label_length_checked(self):
        with pytest.raises(ValueError):
            ContingencyTable(np.ones((2, 3)), column_labels=("x",))


class TestExpected:
    def test_expected_matches_hand_computation(self):
        table = ContingencyTable.from_rows([10, 0], [10, 20])
        expected = table.expected()
        # row totals 10, 30; column totals 20, 20; grand total 40
        np.testing.assert_allclose(expected, [[5, 5], [15, 15]])

    def test_expected_of_empty_table_rejected(self):
        with pytest.raises(ValueError):
            ContingencyTable(np.zeros((2, 2))).expected()


class TestColumnOperations:
    def test_drop_empty_columns(self):
        table = ContingencyTable.from_rows([1, 0, 2], [3, 0, 4], ["a", "b", "c"])
        dropped = table.drop_empty_columns()
        assert dropped.n_columns == 2
        assert dropped.column_labels == ("a", "c")

    def test_drop_empty_columns_noop_when_all_nonzero(self):
        table = ContingencyTable.from_rows([1, 1], [1, 1])
        assert table.drop_empty_columns() is table

    def test_all_empty_rejected(self):
        with pytest.raises(ValueError):
            ContingencyTable(np.zeros((2, 3))).drop_empty_columns()

    def test_clump_rare_columns_pools_small_expected(self):
        # columns 2..5 have tiny counts; with min_expected=5 they must be pooled
        affected = [30, 25, 1, 0, 2, 1]
        unaffected = [28, 30, 0, 1, 1, 2]
        table = ContingencyTable.from_rows(affected, unaffected,
                                           [f"h{i}" for i in range(6)])
        clumped = table.clump_rare_columns(min_expected=5.0)
        assert clumped.n_columns == 3
        assert clumped.column_labels[-1] == "rare"
        # totals are conserved
        assert clumped.total == pytest.approx(table.total)
        np.testing.assert_allclose(clumped.row_totals, table.row_totals)

    def test_clump_rare_columns_keeps_table_when_one_rare(self):
        table = ContingencyTable.from_rows([30, 1], [28, 2])
        clumped = table.clump_rare_columns(min_expected=5.0)
        assert clumped.n_columns == 2

    def test_collapse_to_two_columns(self):
        table = ContingencyTable.from_rows([5, 1, 4], [2, 8, 0])
        collapsed = table.collapse_to_two_columns(np.array([True, False, True]))
        assert collapsed.n_columns == 2
        np.testing.assert_allclose(collapsed.counts, [[9, 1], [2, 8]])

    def test_collapse_requires_proper_subset(self):
        table = ContingencyTable.from_rows([5, 1], [2, 8])
        with pytest.raises(ValueError):
            table.collapse_to_two_columns(np.array([True, True]))
        with pytest.raises(ValueError):
            table.collapse_to_two_columns(np.array([False, False]))
