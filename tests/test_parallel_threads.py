"""Tests of the thread-pool batch evaluator."""

import threading

import pytest

from repro.parallel.serial import SerialEvaluator
from repro.parallel.threads import ThreadPoolEvaluator


def _sum_fitness(snps):
    return float(sum(snps))


class TestConfiguration:
    def test_requires_exactly_one_source(self):
        with pytest.raises(ValueError):
            ThreadPoolEvaluator()
        with pytest.raises(ValueError):
            ThreadPoolEvaluator(_sum_fitness, evaluator_factory=lambda: _sum_fitness)

    def test_invalid_sizing(self):
        with pytest.raises(ValueError):
            ThreadPoolEvaluator(_sum_fitness, n_workers=0)
        with pytest.raises(ValueError):
            ThreadPoolEvaluator(_sum_fitness, chunk_size=0)


class TestEvaluation:
    def test_matches_serial(self, small_evaluator, small_dataset):
        # per-thread evaluators via the factory: a HaplotypeEvaluator's
        # caches are not synchronised, so it must not be shared across threads
        from repro.runtime.spec import (
            EvaluatorSpec,
            InMemoryDatasetHandle,
            SpecEvaluatorFactory,
        )

        factory = SpecEvaluatorFactory(
            EvaluatorSpec.from_evaluator(small_evaluator),
            InMemoryDatasetHandle(small_dataset),
        )
        batch = [(0, 1), (2, 5, 9), (3, 4), (1, 6, 10), (0, 1)]
        expected = SerialEvaluator(small_evaluator).evaluate_batch(batch)
        with ThreadPoolEvaluator(evaluator_factory=factory, n_workers=2) as threaded:
            assert threaded.evaluate_batch(batch) == pytest.approx(expected, rel=1e-12)
            assert threaded.stats.n_requests == len(batch)
            assert threaded.stats.n_dedup_hits == 1

    def test_chunking_preserves_order(self):
        with ThreadPoolEvaluator(_sum_fitness, n_workers=3, chunk_size=2,
                                 dedup=False, cache_size=0) as threaded:
            batch = [(i,) for i in range(11)]
            assert threaded.evaluate_batch(batch) == [float(i) for i in range(11)]

    def test_factory_builds_one_evaluator_per_thread(self):
        built = []
        lock = threading.Lock()

        def factory():
            with lock:
                built.append(threading.get_ident())
            return _sum_fitness

        with ThreadPoolEvaluator(evaluator_factory=factory, n_workers=2,
                                 chunk_size=1, dedup=False, cache_size=0) as threaded:
            threaded.evaluate_batch([(i,) for i in range(8)])
            threaded.evaluate_batch([(i,) for i in range(8, 16)])
        assert 1 <= len(built) <= 2
        assert len(set(built)) == len(built)  # one build per distinct thread

    def test_close_is_idempotent_and_rejects_work(self):
        threaded = ThreadPoolEvaluator(_sum_fitness, n_workers=2)
        threaded.close()
        threaded.close()
        with pytest.raises(RuntimeError):
            threaded.evaluate_batch([(1,)])
