"""Tests of the termination criteria (paper Section 4.6)."""

import pytest

from repro.core.termination import TerminationCriteria, TerminationState


def _state(**kwargs):
    defaults = dict(generation=0, stagnation=0, n_evaluations=0, best_fitness=None)
    defaults.update(kwargs)
    return TerminationState(**defaults)


class TestTerminationCriteria:
    def test_stagnation_stop(self):
        criteria = TerminationCriteria(stagnation_generations=10)
        assert criteria.reason_to_stop(_state(stagnation=9)) is None
        assert criteria.reason_to_stop(_state(stagnation=10)) == "stagnation"
        assert criteria.should_stop(_state(stagnation=10))

    def test_max_generations_stop(self):
        criteria = TerminationCriteria(stagnation_generations=100, max_generations=50)
        assert criteria.reason_to_stop(_state(generation=49)) is None
        assert criteria.reason_to_stop(_state(generation=50)) == "max_generations"

    def test_max_evaluations_stop(self):
        criteria = TerminationCriteria(max_evaluations=1000)
        assert criteria.reason_to_stop(_state(n_evaluations=999)) is None
        assert criteria.reason_to_stop(_state(n_evaluations=1000)) == "max_evaluations"

    def test_target_fitness_stop_takes_priority(self):
        criteria = TerminationCriteria(stagnation_generations=1, target_fitness=10.0)
        state = _state(stagnation=5, best_fitness=12.0)
        assert criteria.reason_to_stop(state) == "target_fitness"

    def test_target_fitness_ignored_when_unknown(self):
        criteria = TerminationCriteria(target_fitness=10.0)
        assert criteria.reason_to_stop(_state(best_fitness=None)) is None

    def test_no_stop_when_nothing_reached(self):
        criteria = TerminationCriteria()
        assert criteria.reason_to_stop(_state(generation=5, stagnation=5)) is None

    def test_validation(self):
        with pytest.raises(ValueError):
            TerminationCriteria(stagnation_generations=0)
        with pytest.raises(ValueError):
            TerminationCriteria(max_generations=0)
        with pytest.raises(ValueError):
            TerminationCriteria(max_evaluations=0)
