"""Synchronous master/slave parallel evaluation (paper Section 4.5, Figure 6).

The paper's implementation uses C + PVM: slaves are started once at the
beginning of the run, load the data once, and then repeatedly receive work to
evaluate and send fitnesses back; the master blocks until the whole
generation is evaluated (synchronous farm).

This module reproduces that organisation on top of :mod:`multiprocessing`
with two dispatch strategies:

* ``dispatch="individual"`` — the paper's literal protocol: one individual
  per message through a worker pool.  The (picklable) fitness function — in
  practice a :class:`~repro.stats.evaluation.HaplotypeEvaluator` holding the
  genotype data — is shipped to each worker exactly once through the pool
  initializer, mirroring "the slaves are initiated at the beginning and
  access only once to the data".
* ``dispatch="chunked"`` — the scalable protocol
  (:class:`~repro.parallel.farm.ChunkedWorkerFarm`): the master partitions a
  generation's distinct individuals by content affinity, each slave receives
  its share as chunks, evaluates them through a worker-local batch fast path
  (per-slave expansion/result caches + LRU) and sends per-chunk stats back,
  which the master merges into the evaluator's
  :class:`~repro.parallel.base.EvaluationStats`.

Either way ``evaluate_batch`` gathers every fitness before returning (a
synchronous generation barrier).
"""

from __future__ import annotations

import os
from typing import Sequence

from .base import (
    BaseBatchEvaluator,
    DistinctEvaluation,
    FitnessCallable,
    SnpSet,
    default_mp_context,
    validate_chunk_size,
    validate_worker_count,
)
from .farm import ChunkedWorkerFarm, EvaluatorFactory, FarmRecoveryPolicy
from .pvm import EvaluationCostModel

__all__ = ["MasterSlaveEvaluator", "default_worker_count"]

# The fitness function installed in each worker process by the pool
# initializer.  Module-level because `multiprocessing` can only call picklable
# top-level functions.
_WORKER_FITNESS: FitnessCallable | None = None


def _initialize_worker(factory: EvaluatorFactory) -> None:
    """Pool initializer: build the fitness function once per worker process."""
    global _WORKER_FITNESS
    _WORKER_FITNESS = factory()


def _evaluate_in_worker(snps: tuple[int, ...]) -> float:
    """Evaluate one haplotype inside a worker process."""
    if _WORKER_FITNESS is None:  # pragma: no cover - defensive
        raise RuntimeError("worker process was not initialised with a fitness function")
    return float(_WORKER_FITNESS(snps))


class _CallableFactory:
    """Picklable factory closing over an already-built fitness callable.

    Pickling the instance ships the callable (and any data it holds) to the
    worker exactly once, at farm start-up.
    """

    def __init__(self, fitness: FitnessCallable) -> None:
        self._fitness = fitness

    def __call__(self) -> FitnessCallable:
        return self._fitness


def default_worker_count() -> int:
    """Default number of slave processes: the machine's CPU count (at least 1)."""
    return max(os.cpu_count() or 1, 1)


class MasterSlaveEvaluator(BaseBatchEvaluator):
    """Multiprocessing implementation of the synchronous master/slave farm.

    Parameters
    ----------
    fitness:
        Picklable fitness callable shipped once to every worker.  Mutually
        exclusive with ``evaluator_factory``.
    evaluator_factory:
        Picklable zero-argument callable; each worker calls it once to build
        its own fitness function.  This is how the ``process-shm`` backend
        rebuilds lightweight evaluator views over a shared-memory genotype
        store instead of receiving a pickled copy of the data.
    n_workers:
        Number of slave processes (default: CPU count).  Must be a positive
        integer.
    chunk_size:
        Number of individuals per message.  With ``dispatch="individual"``
        the default is the paper's one-at-a-time protocol (``1``); with
        ``dispatch="chunked"``, ``None`` (the default) sends each slave its
        whole share of a generation as a single chunk (and, in steal mode,
        cuts shares into pieces of ~equal modelled cost under ``cost_model``).
    cost_model:
        Chunked dispatch only: the evaluation-cost model behind the
        cost-driven auto chunking (default: the paper's Figure-4 calibration).
    dispatch:
        ``"individual"`` (pool, one task per haplotype) or ``"chunked"``
        (per-slave queues, affinity routing, worker-side batch fast path).
    worker_cache_size:
        Chunked dispatch only: bound of each slave's local fitness LRU.
    steal, max_inflight:
        Chunked dispatch only: enable the work-stealing dispatch engine —
        each slave holds at most ``max_inflight`` in-flight chunks and idle
        slaves are refilled from the longest affinity queue (see
        :class:`~repro.parallel.farm.ChunkedWorkerFarm`).  Fitness values
        are identical with stealing on or off, as are ``n_requests`` and the
        total answered (``n_evaluations + n_cache_hits``); the *split*
        between the two can shift when a re-requested haplotype reaches the
        slaves, since a stolen chunk is served by the thief's cache or
        re-evaluated there instead of hitting its owner's cache.
    steal_mode:
        Chunked dispatch only: ``"master"`` (default) keeps chunk queues
        master-side; ``"shm"`` moves them into the shared-memory deque
        region, so slaves self-serve refills and steal from each other's
        ring tails with no master round trip per chunk (see
        :class:`~repro.parallel.farm.ChunkedWorkerFarm`).  Results and
        counters are identical in both modes.
    hosts:
        Distributed chunked dispatch: a sequence of ``"host:port"`` worker
        hosts (see :mod:`repro.runtime.remote`).  One slave slot per entry —
        ``n_workers``, if given, must equal ``len(hosts)``.  Slaves run on
        the remote hosts behind authenticated sockets; requires
        ``dispatch="chunked"`` and ``steal_mode="master"``.
    recovery:
        Chunked dispatch only: a
        :class:`~repro.parallel.farm.FarmRecoveryPolicy` making the farm
        survive slave deaths and hangs (lost chunks are replayed
        bit-identically on survivors; see the farm's documentation).  The
        recovery events a batch survived are reported through
        :class:`~repro.parallel.base.EvaluationStats`.
    worker_wrapper:
        Chunked dispatch only: a callable applied to the evaluator factory
        before it is shipped to the slaves
        (``wrapped_factory = worker_wrapper(factory)``); must be picklable
        together with its result.  Exists for the fault-injection harness
        (:mod:`repro.testing.faults`), which wraps slave fitness functions
        with a chaos policy.
    start_method:
        ``multiprocessing`` start method; the default ``"fork"`` (when
        available) avoids re-importing the scientific stack in every worker,
        ``"spawn"`` is used automatically on platforms without ``fork``.
    dedup, cache_size:
        Batch fast-path controls inherited from
        :class:`~repro.parallel.base.BaseBatchEvaluator`: duplicates within a
        generation are collapsed and previously seen haplotypes are answered
        from a master-side cache, so only distinct, unseen individuals are
        scattered to the slaves.

    The evaluator is a context manager and ``close()`` is idempotent, so
    experiment loops cannot leak worker processes::

        with MasterSlaveEvaluator(evaluator, n_workers=4) as farm:
            fitnesses = farm.evaluate_batch(batch)
    """

    _DISPATCH_MODES = ("individual", "chunked")

    def __init__(
        self,
        fitness: FitnessCallable | None = None,
        *,
        evaluator_factory: EvaluatorFactory | None = None,
        n_workers: int | None = None,
        chunk_size: int | None = None,
        dispatch: str = "individual",
        worker_cache_size: int | None = BaseBatchEvaluator.DEFAULT_CACHE_SIZE,
        steal: bool = False,
        steal_mode: str = "master",
        max_inflight: int = 2,
        cost_model: EvaluationCostModel | None = None,
        recovery: FarmRecoveryPolicy | None = None,
        worker_wrapper=None,
        start_method: str | None = None,
        hosts: Sequence | None = None,
        dedup: bool = True,
        cache_size: int | None = BaseBatchEvaluator.DEFAULT_CACHE_SIZE,
    ) -> None:
        super().__init__(dedup=dedup, cache_size=cache_size)
        if (fitness is None) == (evaluator_factory is None):
            raise ValueError("provide exactly one of fitness or evaluator_factory")
        validate_worker_count(n_workers)
        validate_chunk_size(chunk_size)
        if dispatch not in self._DISPATCH_MODES:
            raise ValueError(f"dispatch must be one of {self._DISPATCH_MODES}, got {dispatch!r}")
        if steal and dispatch != "chunked":
            raise ValueError("steal requires dispatch='chunked'")
        if recovery is not None and dispatch != "chunked":
            raise ValueError("recovery requires dispatch='chunked'")
        if worker_wrapper is not None and dispatch != "chunked":
            raise ValueError("worker_wrapper requires dispatch='chunked'")
        if hosts is not None:
            if dispatch != "chunked":
                raise ValueError("hosts requires dispatch='chunked'")
            if steal_mode != "master":
                raise ValueError(
                    "hosts requires steal_mode='master': a shared-memory "
                    "deque arena cannot span hosts"
                )
            if n_workers is not None and n_workers != len(hosts):
                raise ValueError(
                    f"n_workers={n_workers} conflicts with len(hosts)="
                    f"{len(hosts)}; remote pools run one slave per host entry"
                )
        self._n_workers = len(hosts) if hosts is not None else (n_workers or default_worker_count())
        self._chunk_size = chunk_size
        self._dispatch = dispatch
        factory = evaluator_factory if evaluator_factory is not None else _CallableFactory(fitness)
        if worker_wrapper is not None:
            factory = worker_wrapper(factory)
        self._closed = False
        self._pool = None
        self._farm: ChunkedWorkerFarm | None = None
        if hosts is not None:
            # lazy import: the remote transport pulls in the socket layer,
            # which local farms never need
            from ..runtime.remote import RemoteSlavePool

            self._farm = RemoteSlavePool(
                factory,
                hosts,
                chunk_size=chunk_size,
                worker_cache_size=worker_cache_size,
                steal=steal,
                max_inflight=max_inflight,
                cost_model=cost_model,
                recovery=recovery,
            )
        elif dispatch == "chunked":
            self._farm = ChunkedWorkerFarm(
                factory,
                self._n_workers,
                chunk_size=chunk_size,
                worker_cache_size=worker_cache_size,
                start_method=start_method,
                steal=steal,
                steal_mode=steal_mode,
                max_inflight=max_inflight,
                cost_model=cost_model,
                recovery=recovery,
            )
        else:
            context = default_mp_context(start_method)
            self._pool = context.Pool(
                processes=self._n_workers,
                initializer=_initialize_worker,
                initargs=(factory,),
            )

    # ------------------------------------------------------------------ #
    @property
    def n_workers(self) -> int:
        return self._n_workers

    @property
    def dispatch(self) -> str:
        """The dispatch strategy (``"individual"`` or ``"chunked"``)."""
        return self._dispatch

    @property
    def steal(self) -> bool:
        """Whether the chunked farm runs the work-stealing dispatch engine."""
        return self._farm.steal if self._farm is not None else False

    @property
    def steal_mode(self) -> str:
        """The chunked farm's queue substrate (``"master"`` or ``"shm"``)."""
        return self._farm.steal_mode if self._farm is not None else "master"

    def recovery_counters(self) -> dict[str, int]:
        """The farm's lifetime recovery counters (all zero without a farm)."""
        if self._farm is None:
            return {"n_worker_deaths": 0, "n_chunks_replayed": 0, "n_worker_respawns": 0}
        return self._farm.recovery_counters()

    def evaluate_batch(self, batch: Sequence[SnpSet]) -> list[float]:
        if self._closed:
            raise RuntimeError("evaluator has been closed")
        return super().evaluate_batch(batch)

    def _evaluate_distinct(self, batch: Sequence[SnpSet]) -> list[float]:
        return self._evaluate_distinct_details(batch).values

    def _evaluate_distinct_details(self, batch: Sequence[SnpSet]) -> DistinctEvaluation:
        tasks = [tuple(int(s) for s in snps) for snps in batch]
        if self._farm is not None:
            # recovery events are attributed to the batch that survived them;
            # the scheduler's per-job delta scoping serialises evaluate calls,
            # so before/after deltas cannot interleave across jobs
            recovery_before = self._farm.recovery_counters()
            values, chunk_stats = self._farm.evaluate(tasks)
            recovery_after = self._farm.recovery_counters()
            return DistinctEvaluation(
                values=values,
                n_evaluations=chunk_stats.n_evaluations,
                n_cache_hits=chunk_stats.n_cache_hits,
                backend_seconds=chunk_stats.seconds,
                n_stacked_em=chunk_stats.n_stacked_em,
                n_stacked_problems=chunk_stats.n_stacked_problems,
                n_worker_deaths=(
                    recovery_after["n_worker_deaths"] - recovery_before["n_worker_deaths"]
                ),
                n_chunks_replayed=(
                    recovery_after["n_chunks_replayed"] - recovery_before["n_chunks_replayed"]
                ),
                n_worker_respawns=(
                    recovery_after["n_worker_respawns"] - recovery_before["n_worker_respawns"]
                ),
            )
        results = self._pool.map(
            _evaluate_in_worker, tasks, chunksize=self._chunk_size or 1
        )
        return DistinctEvaluation(values=[float(r) for r in results])

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            if self._farm is not None:
                self._farm.close()
            if self._pool is not None:
                self._pool.close()
                self._pool.join()
        self._run_close_callbacks()

    def terminate(self) -> None:
        """Forcefully terminate the worker processes; idempotent."""
        if not self._closed:
            self._closed = True
            if self._farm is not None:
                self._farm.terminate()
            if self._pool is not None:
                self._pool.terminate()
                self._pool.join()
        self._run_close_callbacks()

    def __del__(self) -> None:  # pragma: no cover - interpreter shutdown path
        try:
            self.terminate()
        except Exception:
            pass
