"""Tests of the landscape analysis utilities (paper Section 3)."""

import numpy as np
import pytest

from repro.search.landscape import (
    building_block_analysis,
    fitness_scale_by_size,
    greedy_constructive_search,
)

PANEL = tuple(range(10))


def _deceptive_fitness(snps):
    """A fitness where the best size-3 haplotype shares nothing with good pairs.

    Pairs from {0, 1, 2} score well; the triple (7, 8, 9) scores best of all
    size-3 haplotypes but its pairs are mediocre.  This is exactly the
    structure the paper reports (good large haplotypes not composed of good
    small ones).
    """
    snps = tuple(sorted(snps))
    if snps == (7, 8, 9):
        return 100.0
    score = 10.0 * len(snps)
    score += sum(3.0 for s in snps if s in (0, 1, 2))
    return score


class TestFitnessScale:
    def test_summaries_per_size(self, small_evaluator):
        summaries = fitness_scale_by_size(
            small_evaluator, 14, sizes=(2, 3), snp_subset=range(7)
        )
        assert set(summaries) == {2, 3}
        assert summaries[2].n_haplotypes == 21
        assert summaries[3].n_haplotypes == 35
        for summary in summaries.values():
            assert summary.min_fitness <= summary.mean_fitness <= summary.max_fitness
            assert summary.std_fitness >= 0.0

    def test_fitness_scale_grows_with_size(self, small_evaluator):
        """The paper's second landscape finding, on real EH-DIALL/CLUMP scores."""
        summaries = fitness_scale_by_size(
            small_evaluator, 14, sizes=(2, 4), snp_subset=range(8)
        )
        assert summaries[4].mean_fitness > summaries[2].mean_fitness


class TestBuildingBlocks:
    def test_deceptive_landscape_detected(self):
        report = building_block_analysis(
            _deceptive_fitness, 10, size=3, top_k=1, snp_subset=PANEL
        )
        # the single best triple (7,8,9) contains no top pair -> containment 0
        assert report.containment_fraction == 0.0
        assert report.best_large[0].snps == (7, 8, 9)

    def test_fully_nested_landscape(self):
        def nested(snps):
            return float(sum(10 - s for s in snps))

        report = building_block_analysis(nested, 10, size=3, top_k=3, snp_subset=PANEL)
        assert report.containment_fraction == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            building_block_analysis(_deceptive_fitness, 10, size=1)
        with pytest.raises(ValueError):
            building_block_analysis(_deceptive_fitness, 10, size=3, top_k=0)


class TestGreedyConstruction:
    def test_greedy_misses_deceptive_optimum(self):
        greedy = greedy_constructive_search(
            _deceptive_fitness, 10, target_size=3, snp_subset=PANEL
        )
        # greedy grows from the best pair (inside {0,1,2}) and never reaches (7,8,9)
        assert greedy.fitness < 100.0
        assert set(greedy.snps) & {0, 1, 2}

    def test_greedy_finds_monotone_optimum(self):
        def monotone(snps):
            return float(sum(20 - s for s in snps))

        greedy = greedy_constructive_search(monotone, 10, target_size=4, snp_subset=PANEL)
        assert greedy.snps == (0, 1, 2, 3)

    def test_validation(self):
        with pytest.raises(ValueError):
            greedy_constructive_search(_deceptive_fitness, 10, target_size=1, seed_size=2)
