"""CLUMP: contingency-table association statistics (Sham & Curtis, 1995).

CLUMP assesses "the significance of the departure of observed values in a
contingency table from the expected values conditional on the marginal
totals" for a 2 × m case/control table with potentially many sparse columns.
It reports four statistics:

* **T1** — the ordinary Pearson chi-square of the raw 2 × m table.  This is
  the statistic the paper uses as the haplotype fitness ("a good haplotype is
  an haplotype that is highly correlated with the disease, which corresponds
  to a high value").
* **T2** — the Pearson chi-square of the table after pooling columns with
  small expected counts (the "clumped" table).
* **T3** — the largest chi-square among the 2 × 2 tables obtained by comparing
  each column against the sum of all the others.
* **T4** — the largest chi-square among the 2 × 2 tables obtained by pooling
  *any* subset of columns against the rest.  The original program finds this
  partition heuristically; we use the standard orderings heuristic: columns
  are sorted by their affected/total ratio and every prefix split of that
  order is examined (the optimal two-group split of a 2 × m table is always a
  prefix of this order for the chi-square criterion).

Because T3 and T4 are maxima over many correlated tests, their nominal
chi-square p-values are anti-conservative; CLUMP therefore estimates
significance by Monte-Carlo simulation of random tables with the same
marginal totals, which :func:`monte_carlo_p_values` reproduces.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .chi2 import Chi2Result, chi2_sf, pearson_chi2
from .contingency import ContingencyTable

__all__ = [
    "ClumpResult",
    "t1_statistic",
    "t2_statistic",
    "t3_statistic",
    "t4_statistic",
    "clump_statistics",
    "simulate_table_with_margins",
    "monte_carlo_p_values",
]


@dataclass(frozen=True)
class ClumpResult:
    """The four CLUMP statistics (and their nominal chi-square results)."""

    t1: Chi2Result
    t2: Chi2Result
    t3: Chi2Result
    t4: Chi2Result

    def statistic(self, name: str) -> float:
        """Value of one of the statistics by name (``"t1"`` … ``"t4"``)."""
        name = name.lower()
        if name not in {"t1", "t2", "t3", "t4"}:
            raise ValueError(f"unknown CLUMP statistic {name!r}")
        return float(getattr(self, name).statistic)


def t1_statistic(table: ContingencyTable) -> Chi2Result:
    """T1: Pearson chi-square of the raw table."""
    return pearson_chi2(table)


def t2_statistic(table: ContingencyTable, *, min_expected: float = 5.0) -> Chi2Result:
    """T2: Pearson chi-square after clumping rare columns together."""
    return pearson_chi2(table.clump_rare_columns(min_expected))


def _two_by_two_chi2(a: float, b: float, c: float, d: float) -> float:
    """Chi-square of the 2×2 table [[a, b], [c, d]] (0 when a margin is empty)."""
    n = a + b + c + d
    if n <= 0:
        return 0.0
    row1, row2 = a + b, c + d
    col1, col2 = a + c, b + d
    denom = row1 * row2 * col1 * col2
    if denom <= 0:
        return 0.0
    return float(n * (a * d - b * c) ** 2 / denom)


def t3_statistic(table: ContingencyTable) -> Chi2Result:
    """T3: maximum chi-square of each column tested against all the others pooled."""
    table = table.drop_empty_columns()
    counts = table.counts
    row_totals = table.row_totals
    best = 0.0
    for j in range(table.n_columns):
        a = counts[0, j]
        c = counts[1, j]
        b = row_totals[0] - a
        d = row_totals[1] - c
        best = max(best, _two_by_two_chi2(a, b, c, d))
    return Chi2Result(statistic=best, df=1, p_value=chi2_sf(best, 1))


def t4_statistic(table: ContingencyTable) -> Chi2Result:
    """T4: maximum 2×2 chi-square over column subsets pooled against the rest.

    Columns are ordered by their affected proportion and every prefix split of
    that order is evaluated; this examines ``m - 1`` candidate clumpings and
    contains the chi-square-optimal bipartition.
    """
    table = table.drop_empty_columns()
    counts = table.counts
    if table.n_columns < 2:
        return Chi2Result(statistic=0.0, df=1, p_value=1.0)
    column_totals = table.column_totals
    with np.errstate(invalid="ignore", divide="ignore"):
        affected_ratio = np.where(column_totals > 0, counts[0] / column_totals, 0.0)
    order = np.argsort(affected_ratio)[::-1]
    sorted_counts = counts[:, order]
    cum = np.cumsum(sorted_counts, axis=1)
    row_totals = table.row_totals
    best = 0.0
    for split in range(table.n_columns - 1):
        a = cum[0, split]
        c = cum[1, split]
        b = row_totals[0] - a
        d = row_totals[1] - c
        best = max(best, _two_by_two_chi2(a, b, c, d))
    return Chi2Result(statistic=best, df=1, p_value=chi2_sf(best, 1))


def clump_statistics(table: ContingencyTable, *, min_expected: float = 5.0) -> ClumpResult:
    """Compute all four CLUMP statistics for a table."""
    return ClumpResult(
        t1=t1_statistic(table),
        t2=t2_statistic(table, min_expected=min_expected),
        t3=t3_statistic(table),
        t4=t4_statistic(table),
    )


def simulate_table_with_margins(
    row_totals: np.ndarray,
    column_probabilities: np.ndarray,
    rng: np.random.Generator,
) -> ContingencyTable:
    """Simulate a random 2 × m table under the null hypothesis.

    Following the original CLUMP program, null tables are generated by
    allocating each row's total independently to the columns with
    probabilities given by the pooled column proportions (multinomial
    sampling conditional on the row totals).
    """
    row_totals = np.asarray(np.rint(row_totals), dtype=np.int64)
    column_probabilities = np.asarray(column_probabilities, dtype=np.float64)
    if np.any(row_totals < 0):
        raise ValueError("row totals must be non-negative")
    total_p = column_probabilities.sum()
    if total_p <= 0:
        raise ValueError("column probabilities must not all be zero")
    p = column_probabilities / total_p
    rows = [rng.multinomial(int(r), p) for r in row_totals]
    return ContingencyTable(np.vstack(rows).astype(np.float64))


def monte_carlo_p_values(
    table: ContingencyTable,
    *,
    n_simulations: int = 1000,
    min_expected: float = 5.0,
    seed: int | np.random.Generator | None = 0,
) -> dict[str, float]:
    """Monte-Carlo p-values of the four CLUMP statistics.

    The empirical p-value of each statistic is ``(1 + #{simulated >= observed})
    / (1 + n_simulations)`` — the add-one rule guarantees valid (never zero)
    p-values.
    """
    if n_simulations <= 0:
        raise ValueError("n_simulations must be positive")
    rng = seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)
    table = table.drop_empty_columns()
    observed = clump_statistics(table, min_expected=min_expected)
    observed_values = {k: observed.statistic(k) for k in ("t1", "t2", "t3", "t4")}
    exceed = {k: 0 for k in observed_values}
    row_totals = table.row_totals
    column_p = table.column_totals / table.total
    for _ in range(n_simulations):
        simulated = simulate_table_with_margins(row_totals, column_p, rng)
        sim_stats = clump_statistics(simulated, min_expected=min_expected)
        for k in exceed:
            if sim_stats.statistic(k) >= observed_values[k]:
                exceed[k] += 1
    return {k: (1 + exceed[k]) / (1 + n_simulations) for k in exceed}
