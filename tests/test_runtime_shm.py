"""Tests of the shared-memory genotype store (one-copy guarantee)."""

import numpy as np
import pytest

from repro.runtime.shm import SharedGenotypeStore
from repro.runtime.spec import EvaluatorSpec, SpecEvaluatorFactory


@pytest.fixture()
def store(small_dataset):
    store = SharedGenotypeStore(small_dataset)
    yield store
    store.release()


class TestLayout:
    def test_affected_first_row_order(self, small_dataset, store):
        view = store.handle.load()
        assert view.n_affected == small_dataset.n_affected
        assert view.n_unaffected == small_dataset.n_unaffected
        assert view.n_unknown == 0
        # affected block first, each group preserving its original order
        np.testing.assert_array_equal(
            view.genotypes[: view.n_affected],
            small_dataset.affected().genotypes,
        )
        np.testing.assert_array_equal(
            view.genotypes[view.n_affected:],
            small_dataset.unaffected().genotypes,
        )
        del view
        store.handle.detach()

    def test_segment_size_is_one_matrix_plus_status(self, small_dataset, store):
        n = small_dataset.n_affected + small_dataset.n_unaffected
        assert store.n_bytes >= n * small_dataset.n_snps + n
        # a shared segment may be page-rounded, but never a second copy
        assert store.n_bytes < 2 * n * small_dataset.n_snps


class TestOneCopy:
    def test_attached_dataset_is_a_view_not_a_copy(self, store):
        handle = store.handle
        view = handle.load()
        # mutate the store's segment directly; the attached dataset must see
        # the change — i.e. it reads the shared pages, not a private copy
        original = int(view.genotypes[0, 0])
        replacement = 0 if original != 0 else 1
        store_view = np.frombuffer(store._segment.buf, dtype=np.int8)
        store_view[0] = replacement
        assert int(view.genotypes[0, 0]) == replacement
        store_view[0] = original
        assert int(view.genotypes[0, 0]) == original
        del store_view, view
        handle.detach()

    def test_worker_evaluator_groups_are_windows_into_the_shared_matrix(self, store):
        """The factory's evaluator holds zero-copy group views (PLINK-style)."""
        factory = SpecEvaluatorFactory(EvaluatorSpec(), store.handle)
        evaluator = factory()
        full = evaluator.dataset.genotypes
        affected = evaluator._affected.genotypes
        unaffected = evaluator._unaffected.genotypes
        assert np.shares_memory(full, affected)
        assert np.shares_memory(full, unaffected)
        del evaluator, full, affected, unaffected
        store.handle.detach()

    def test_handle_pickles_without_live_attachments(self, store):
        import pickle

        view = store.handle.load()
        clone = pickle.loads(pickle.dumps(store.handle))
        assert clone.name == store.handle.name
        assert clone._segments == []
        del view
        store.handle.detach()


class TestParity:
    def test_shm_evaluator_matches_plain_evaluator(self, small_dataset, store):
        plain = EvaluatorSpec().build(small_dataset)
        shared = SpecEvaluatorFactory(EvaluatorSpec(), store.handle)()
        for snps in [(0, 1), (2, 5, 9), (3, 4), (1, 6, 10)]:
            assert shared.evaluate(snps) == pytest.approx(plain.evaluate(snps), rel=1e-12)
        del shared
        store.handle.detach()


class TestLifecycle:
    def test_release_is_idempotent(self, small_dataset):
        store = SharedGenotypeStore(small_dataset)
        store.release()
        store.release()

    def test_context_manager_releases(self, small_dataset):
        from multiprocessing import shared_memory

        with SharedGenotypeStore(small_dataset) as store:
            name = store.name
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)

    def test_rejects_dataset_without_known_status(self):
        from repro.genetics.dataset import GenotypeDataset

        dataset = GenotypeDataset([[0, 1], [1, 2]], [-1, -1])
        with pytest.raises(ValueError):
            SharedGenotypeStore(dataset)
