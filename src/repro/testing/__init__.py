"""Test-support utilities shipped with the package.

:mod:`repro.testing.faults` is the fault-injection harness behind the
self-healing execution core's tests and benchmarks: picklable chaos wrappers
that make a slave process die, hang or raise at a chosen point, so recovery
paths are exercised deterministically instead of waiting for real failures.
"""

from .faults import ChaosError, ChaosFactory, ChaosPolicy, chaos_wrapper

__all__ = ["ChaosPolicy", "ChaosError", "ChaosFactory", "chaos_wrapper"]
