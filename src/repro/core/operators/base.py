"""Operator interfaces and application records.

The GA engine separates *proposing* new haplotypes from *evaluating* them:
operators only return candidate SNP sets; the engine batches every candidate
of a generation into a single parallel evaluation (the paper's master/slave
farm), then computes each operator application's *progress* — the normalised
fitness improvement it produced — which feeds the adaptive rate controller.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ...genetics.constraints import HaplotypeConstraints
from ..individual import HaplotypeIndividual

__all__ = ["SnpTuple", "MutationOperator", "CrossoverOperator", "OperatorApplication"]

#: A candidate haplotype produced by an operator (sorted, duplicate-free).
SnpTuple = tuple[int, ...]


@dataclass(frozen=True)
class OperatorApplication:
    """Record of one operator application, used by the adaptive controller.

    Attributes
    ----------
    operator:
        Name of the operator that was applied.
    progress:
        Normalised fitness progress of the application (non-negative; the
        adaptive scheme only rewards improvement).
    """

    operator: str
    progress: float


class MutationOperator(abc.ABC):
    """A mutation: proposes candidate haplotypes derived from one parent."""

    #: Unique operator name (key of the adaptive controller).
    name: str = "mutation"

    @abc.abstractmethod
    def is_applicable(self, parent: HaplotypeIndividual) -> bool:
        """Whether the operator can act on this parent (size bounds etc.)."""

    @abc.abstractmethod
    def propose(
        self,
        parent: HaplotypeIndividual,
        constraints: HaplotypeConstraints,
        rng: np.random.Generator,
    ) -> list[SnpTuple]:
        """Candidate haplotypes derived from the parent (possibly empty)."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r})"


class CrossoverOperator(abc.ABC):
    """A crossover: proposes candidate haplotypes derived from two parents."""

    name: str = "crossover"

    @abc.abstractmethod
    def is_applicable(
        self, parent_a: HaplotypeIndividual, parent_b: HaplotypeIndividual
    ) -> bool:
        """Whether the operator can recombine this pair of parents."""

    @abc.abstractmethod
    def recombine(
        self,
        parent_a: HaplotypeIndividual,
        parent_b: HaplotypeIndividual,
        constraints: HaplotypeConstraints,
        rng: np.random.Generator,
    ) -> list[SnpTuple]:
        """Candidate children (typically two) derived from the parents."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r})"


def repair_to_size(
    chosen: Sequence[int],
    target_size: int,
    pool: Sequence[int],
    constraints: HaplotypeConstraints,
    rng: np.random.Generator,
) -> SnpTuple | None:
    """Complete a partial haplotype up to ``target_size`` SNPs.

    SNPs are added from ``pool`` first (preferring constraint-compatible
    ones), then from the full panel if the pool is exhausted.  Returns
    ``None`` when no feasible completion exists, which callers treat as a
    failed operator application.
    """
    current = list(dict.fromkeys(int(s) for s in chosen))
    if len(current) > target_size:
        # keep a random subset of the requested size
        keep = rng.choice(len(current), size=target_size, replace=False)
        current = [current[i] for i in sorted(keep)]
    pool_candidates = [int(s) for s in pool if int(s) not in current]
    rng.shuffle(pool_candidates)
    for candidate in pool_candidates:
        if len(current) == target_size:
            break
        if all(constraints.pair_is_valid(candidate, s) for s in current):
            current.append(candidate)
    while len(current) < target_size:
        candidates = constraints.compatible_snps(current)
        if candidates.size == 0:
            return None
        current.append(int(rng.choice(candidates)))
    return tuple(sorted(current))
