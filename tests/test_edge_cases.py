"""Edge-case and failure-injection tests across the pipeline.

Real genotype data is messy: missing genotypes, monomorphic SNPs, tiny
groups, perfectly duplicated markers.  These tests check that every stage of
the pipeline — LD, EM, CLUMP, the evaluator and the GA — degrades gracefully
instead of crashing or producing invalid statistics.
"""

import numpy as np
import pytest

from repro.core.config import GAConfig
from repro.core.ga import AdaptiveMultiPopulationGA
from repro.genetics.alleles import GENOTYPE_MISSING
from repro.genetics.dataset import GenotypeDataset
from repro.genetics.frequencies import allele_frequencies
from repro.genetics.ld import pairwise_ld
from repro.genetics.simulate import DiseaseModel, PopulationModel, simulate_case_control_study
from repro.stats.ehdiall import run_ehdiall
from repro.stats.evaluation import HaplotypeEvaluator


@pytest.fixture(scope="module")
def messy_study():
    """A small study with 10% missing genotypes."""
    model = PopulationModel(n_snps=10, block_size=3)
    disease = DiseaseModel(
        causal_snps=(1, 4), risk_alleles=(2, 2),
        baseline_penetrance=0.1, relative_risk=5.0, risk_haplotype_frequency=0.3,
    )
    return simulate_case_control_study(
        population_model=model, disease_model=disease,
        n_affected=25, n_unaffected=25, missing_rate=0.10, seed=13,
    )


class TestMissingData:
    def test_evaluation_with_missing_genotypes(self, messy_study):
        evaluator = HaplotypeEvaluator(messy_study.dataset)
        record = evaluator.evaluate_detailed((1, 4, 7))
        assert np.isfinite(record.fitness)
        assert record.fitness >= 0.0
        # the expected counts cover only the complete-data individuals
        assert record.table.total <= 2 * messy_study.dataset.n_individuals

    def test_ehdiall_uses_only_complete_rows(self, messy_study):
        result = run_ehdiall(messy_study.dataset, (0, 1, 2))
        assert result.n_individuals <= messy_study.dataset.n_individuals
        assert result.n_individuals > 0
        assert result.haplotype_frequencies.sum() == pytest.approx(1.0)

    def test_ga_runs_on_missing_data(self, messy_study):
        evaluator = HaplotypeEvaluator(messy_study.dataset)
        config = GAConfig(
            population_size=16, min_haplotype_size=2, max_haplotype_size=3,
            termination_stagnation=3, max_generations=6, seed=1,
        )
        result = AdaptiveMultiPopulationGA(
            evaluator, n_snps=10, config=config
        ).run()
        assert set(result.best_per_size) == {2, 3}

    def test_all_missing_at_selected_snps(self):
        genotypes = np.array(
            [[-1, 0, 1], [-1, 1, 1], [-1, 2, 0], [-1, 0, 2]], dtype=np.int8
        )
        dataset = GenotypeDataset(genotypes, [1, 1, 0, 0])
        result = run_ehdiall(dataset, (0,))
        assert result.n_individuals == 0
        assert result.h1_log_likelihood == 0.0


class TestDegenerateMarkers:
    def test_monomorphic_snp_ld_is_zero(self):
        genotypes = np.column_stack([
            np.zeros(40, dtype=np.int8),                       # monomorphic SNP
            np.random.default_rng(0).integers(0, 3, 40).astype(np.int8),
        ])
        dataset = GenotypeDataset(genotypes, [1] * 20 + [0] * 20)
        stats = pairwise_ld(dataset, 0, 1)
        assert stats.r_squared == pytest.approx(0.0)
        assert np.isfinite(stats.d)

    def test_monomorphic_snp_evaluation_is_finite(self):
        rng = np.random.default_rng(1)
        genotypes = np.column_stack([
            np.full(40, 2, dtype=np.int8),                     # fixed allele 2
            rng.integers(0, 3, 40).astype(np.int8),
            rng.integers(0, 3, 40).astype(np.int8),
        ])
        dataset = GenotypeDataset(genotypes, [1] * 20 + [0] * 20)
        evaluator = HaplotypeEvaluator(dataset)
        value = evaluator.evaluate((0, 1))
        assert np.isfinite(value)
        assert value >= 0.0

    def test_duplicated_marker_has_perfect_ld(self):
        rng = np.random.default_rng(2)
        column = rng.integers(0, 3, 60).astype(np.int8)
        dataset = GenotypeDataset(np.column_stack([column, column]), [1] * 30 + [0] * 30)
        stats = pairwise_ld(dataset, 0, 1)
        assert stats.r_squared == pytest.approx(1.0, abs=1e-6)

    def test_allele_frequency_of_constant_marker(self):
        dataset = GenotypeDataset(np.zeros((10, 1), dtype=np.int8), [1] * 5 + [0] * 5)
        assert allele_frequencies(dataset)[0] == pytest.approx(0.0)


class TestTinyGroups:
    def test_evaluator_with_minimal_groups(self):
        rng = np.random.default_rng(3)
        genotypes = rng.integers(0, 3, size=(4, 6)).astype(np.int8)
        dataset = GenotypeDataset(genotypes, [1, 1, 0, 0])
        evaluator = HaplotypeEvaluator(dataset)
        assert np.isfinite(evaluator.evaluate((0, 1)))

    def test_unknown_status_individuals_do_not_enter_evaluation(self, messy_study):
        dataset = messy_study.dataset
        with_unknown = GenotypeDataset(
            np.vstack([dataset.genotypes, dataset.genotypes[:5]]),
            np.concatenate([dataset.status, np.full(5, GENOTYPE_MISSING, dtype=np.int8)]),
        )
        a = HaplotypeEvaluator(dataset).evaluate((1, 4))
        b = HaplotypeEvaluator(with_unknown).evaluate((1, 4))
        assert a == pytest.approx(b)

    def test_single_snp_panel_ga_rejected(self, messy_study):
        evaluator = HaplotypeEvaluator(messy_study.dataset)
        with pytest.raises(ValueError):
            AdaptiveMultiPopulationGA(evaluator, n_snps=1)
