"""Command-line interface.

``python -m repro <command>`` (or the ``repro-ga`` console script) exposes the
main workflows:

* ``simulate``   — generate a synthetic case/control study and write it as the
  paper's three-table layout;
* ``evaluate``   — score one haplotype (EH-DIALL + CLUMP) on a dataset;
* ``run``        — run the adaptive multi-population GA on a dataset;
* ``scan``       — windowed genome-scale scan: one GA job per overlapping
  locus window, multiplexed over one persistent scheduler/worker farm;
* ``serve``      — scan-as-a-service daemon: one warm farm serving scan/run
  requests from many clients, with a cross-request result cache and
  cost-aware admission (``run``/``scan`` submit to it via ``--connect``);
* ``table1`` / ``figure4`` / ``table2`` / ``ablation`` / ``speedup`` /
  ``landscape`` — regenerate the corresponding experiment of the paper.

Every experiment subcommand takes the same ``--seed`` and ``--backend``
flags, routed through the run scheduler, so any study can be repeated on any
execution substrate.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

__all__ = ["build_parser", "main"]


def _backend_choices() -> list[str]:
    """Every registered execution backend (plug-ins included).

    Resolved from the registry at parser-build time, so a backend added via
    :func:`repro.runtime.backends.register_backend` is selectable from every
    subcommand without touching the CLI.
    """
    from .runtime.backends import backend_names

    return list(backend_names())


def _add_backend_arguments(
    parser: argparse.ArgumentParser,
    *,
    default_backend: str | None = "serial",
    default_seed: int = 2004,
) -> None:
    """The uniform ``--seed`` / ``--backend`` / ``--workers`` flag set."""
    parser.add_argument("--seed", type=int, default=default_seed,
                        help=f"base random seed (default {default_seed})")
    parser.add_argument("--backend", default=default_backend,
                        choices=_backend_choices(),
                        help="execution backend for fitness evaluation "
                             f"(default: {default_backend})")
    parser.add_argument("--workers", type=int, default=None,
                        help="number of evaluation workers for the parallel "
                             "backends (default: backend's own default)")


def build_parser() -> argparse.ArgumentParser:
    """Build the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-ga",
        description=(
            "Parallel adaptive GA for linkage disequilibrium "
            "(reproduction of Vermeulen-Jourdan et al., IPDPS 2004)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_sim = sub.add_parser("simulate", help="generate a synthetic case/control study")
    p_sim.add_argument("output", help="directory to write the three-table study layout into")
    p_sim.add_argument("--n-snps", type=int, default=51)
    p_sim.add_argument("--n-affected", type=int, default=53)
    p_sim.add_argument("--n-unaffected", type=int, default=53)
    p_sim.add_argument("--seed", type=int, default=2004)

    p_eval = sub.add_parser("evaluate", help="evaluate one haplotype on a study directory")
    p_eval.add_argument("study", help="directory written by the 'simulate' command")
    p_eval.add_argument("snps", nargs="+", type=int, help="SNP indices of the haplotype")
    p_eval.add_argument("--statistic", default="t1",
                        choices=["t1", "t2", "t3", "t4", "lrt"])
    p_eval.add_argument("--significance", action="store_true",
                        help="also report Monte-Carlo p-values")

    p_run = sub.add_parser("run", help="run the adaptive multi-population GA on a study")
    p_run.add_argument("study", nargs="?", default=None,
                       help="study directory (default: the built-in lille-like dataset)")
    p_run.add_argument("--population-size", type=int, default=150)
    p_run.add_argument("--max-size", type=int, default=6)
    p_run.add_argument("--stagnation", type=int, default=100)
    p_run.add_argument("--max-generations", type=int, default=600)
    p_run.add_argument("--backend", default=None,
                       choices=_backend_choices(),
                       help="execution backend for fitness evaluation "
                            "(default: serial, or process when --workers > 1)")
    p_run.add_argument("--workers", type=int, default=1,
                       help="number of evaluation workers (1 = serial unless "
                            "--backend says otherwise)")
    p_run.add_argument("--chunk-size", type=int, default=None,
                       help="individuals per worker message for the chunked "
                            "backends (default: one chunk per worker)")
    p_run.add_argument("--statistic", default="t1",
                       choices=["t1", "t2", "t3", "t4", "lrt"])
    p_run.add_argument("--packed", action="store_true",
                       help="run on the 2-bit packed genotype substrate "
                            "(~4x smaller shared-memory panels; results are "
                            "bit-identical to the byte path)")
    p_run.add_argument("--hosts", nargs="+", default=None, metavar="HOST:PORT",
                       help="remote worker hosts for the 'remote' backend, "
                            "one slave per entry (implies --backend remote)")
    p_run.add_argument("--steal-mode", default="master",
                       choices=["master", "shm"],
                       help="chunk-queue substrate of the process farms: "
                            "'master' routes every refill through the master, "
                            "'shm' lets slaves self-serve and steal through "
                            "shared-memory deques (default: master)")
    p_run.add_argument("--seed", type=int, default=0)
    p_run.add_argument("--connect", default=None, metavar="HOST:PORT",
                       help="submit the run to a running 'repro serve' daemon "
                            "instead of building a local substrate (the "
                            "daemon's backend/workers/statistic apply)")
    p_run.add_argument("--client-id", default=None,
                       help="tenant identity reported to --connect's daemon "
                            "(default: hostname-pid)")
    p_run.add_argument("--timeout", type=float, default=None, metavar="SECONDS",
                       help="deadline for the whole --connect request; past "
                            "it the client raises instead of blocking forever")
    p_run.add_argument("--retries", type=int, default=None, metavar="N",
                       help="re-submit a --connect request up to N times if "
                            "the daemon connection dies mid-flight (served "
                            "requests are idempotent: completed work replays "
                            "from the daemon's result cache; default 2)")

    sub.add_parser("table1", help="regenerate Table 1 (search-space sizes)")

    p_fig4 = sub.add_parser("figure4", help="regenerate Figure 4 (evaluation time vs size)")
    p_fig4.add_argument("--samples", type=int, default=20)
    p_fig4.add_argument("--max-size", type=int, default=7)

    p_scan = sub.add_parser(
        "scan",
        help="genome-scale windowed scan: one GA job per locus window over "
             "one persistent scheduler",
    )
    p_scan.add_argument("study", nargs="?", default=None,
                        help="study directory (default: the built-in 249-SNP "
                             "chromosome-scale panel)")
    p_scan.add_argument("--window-size", type=int, default=8,
                        help="loci per window (default 8)")
    p_scan.add_argument("--window-overlap", type=int, default=4,
                        help="loci shared by consecutive windows (default 4)")
    p_scan.add_argument("--jobs", type=int, default=1,
                        help="window jobs executed concurrently over the "
                             "shared substrate (default 1)")
    p_scan.add_argument("--max-pending", type=int, default=256,
                        help="bound on window jobs submitted but not yet "
                             "finished (default 256, so chromosome-scale "
                             "plans never hold every job in memory; 0 = "
                             "unlimited)")
    p_scan.add_argument("--chunk-size", type=int, default=None,
                        help="individuals per worker message for the chunked "
                             "backends")
    p_scan.add_argument("--statistic", default="t1",
                        choices=["t1", "t2", "t3", "t4", "lrt"])
    p_scan.add_argument("--population-size", type=int, default=30)
    p_scan.add_argument("--max-size", type=int, default=4,
                        help="largest haplotype size searched per window")
    p_scan.add_argument("--stagnation", type=int, default=8)
    p_scan.add_argument("--max-generations", type=int, default=60)
    p_scan.add_argument("--top", type=int, default=10,
                        help="number of top windows to print")
    p_scan.add_argument("--checkpoint", default=None, metavar="PATH",
                        help="journal each completed window to this JSONL "
                             "file (crash-safe; see --resume)")
    p_scan.add_argument("--resume", action="store_true",
                        help="restore windows already in --checkpoint instead "
                             "of re-running them (bit-identical to an "
                             "uninterrupted scan)")
    p_scan.add_argument("--self-heal", action="store_true",
                        help="survive worker crashes on the process-farm "
                             "backends: respawn dead slaves and replay their "
                             "chunks on survivors")
    p_scan.add_argument("--packed", action="store_true",
                        help="run on the 2-bit packed genotype substrate "
                             "(~4x smaller shared-memory panels; the report "
                             "is bit-identical to the byte path)")
    p_scan.add_argument("--bed", default=None, metavar="PREFIX",
                        help="scan a PLINK .bed/.bim/.fam fileset (prefix or "
                             ".bed path; memory-mapped, implies --packed; "
                             "mutually exclusive with the study argument)")
    p_scan.add_argument("--hosts", nargs="+", default=None, metavar="HOST:PORT",
                        help="remote worker hosts for the 'remote' backend, "
                             "one slave per entry (requires --backend remote)")
    p_scan.add_argument("--steal-mode", default="master",
                        choices=["master", "shm"],
                        help="chunk-queue substrate of the process farms: "
                             "'master' routes every refill through the "
                             "master, 'shm' lets slaves self-serve and steal "
                             "through shared-memory deques (default: master)")
    p_scan.add_argument("--cost-model", default=None, metavar="PATH",
                        help="JSON file with a calibrated evaluation-cost "
                             "model ({\"base_seconds\": ..., "
                             "\"growth_factor\": ...}); prices window "
                             "priorities and farm chunking without re-probing")
    p_scan.add_argument("--vcf", default=None, metavar="PATH",
                        help="scan a VCF (.vcf or .vcf.gz; GT fields, missing "
                             "calls -> missing code; implies --packed; "
                             "mutually exclusive with the study argument and "
                             "--bed)")
    p_scan.add_argument("--pheno", default=None, metavar="PATH",
                        help="phenotype sidecar for --vcf ('id pheno' rows or "
                             "a .fam file, linkage convention: 2 = affected, "
                             "1 = unaffected)")
    p_scan.add_argument("--connect", default=None, metavar="HOST:PORT",
                        help="submit the scan to a running 'repro serve' "
                             "daemon instead of building a local substrate "
                             "(the daemon's panel and backend apply; cached "
                             "windows replay bit-identically)")
    p_scan.add_argument("--client-id", default=None,
                        help="tenant identity reported to --connect's daemon "
                             "(default: hostname-pid)")
    p_scan.add_argument("--timeout", type=float, default=None,
                        metavar="SECONDS",
                        help="deadline for the whole --connect scan; past it "
                             "the client raises instead of blocking forever")
    p_scan.add_argument("--retries", type=int, default=None, metavar="N",
                        help="re-submit a --connect scan up to N times if the "
                             "daemon connection dies mid-flight (served scans "
                             "are idempotent: completed windows replay from "
                             "the daemon's result cache; default 2)")
    _add_backend_arguments(p_scan, default_seed=0)

    p_t2 = sub.add_parser("table2", help="regenerate Table 2 (GA results over repeated runs)")
    p_t2.add_argument("--runs", type=int, default=10)
    p_t2.add_argument("--quick", action="store_true",
                      help="use the reduced configuration (minutes instead of hours)")
    _add_backend_arguments(p_t2)

    p_abl = sub.add_parser("ablation", help="regenerate the Section 5.2 scheme comparison")
    p_abl.add_argument("--runs", type=int, default=3)
    _add_backend_arguments(p_abl)

    p_speed = sub.add_parser("speedup", help="parallel speedup study")
    p_speed.add_argument("--measured", action="store_true",
                         help="also time the real multiprocessing farm")
    p_speed.add_argument("--chunk-size", type=int, default=None,
                         help="individuals per worker message for --measured")
    _add_backend_arguments(p_speed, default_backend="process")

    p_land = sub.add_parser("landscape", help="regenerate the Section 3 landscape study")
    p_land.add_argument("--panel-size", type=int, default=16)
    p_land.add_argument("--max-size", type=int, default=4)

    p_rob = sub.add_parser("robustness",
                           help="cross-run solution similarity (Section 5.2 claim)")
    p_rob.add_argument("--runs", type=int, default=5)
    _add_backend_arguments(p_rob)

    p_obj = sub.add_parser("objectives",
                           help="compare candidate objective functions (paper conclusion)")
    p_obj.add_argument("--per-size", type=int, default=40)
    _add_backend_arguments(p_obj)

    p_worker = sub.add_parser(
        "worker",
        help="run a remote worker host: accept 'remote'-backend masters and "
             "serve one slave process per connection",
    )
    p_worker.add_argument("--bind", required=True, metavar="HOST:PORT",
                          help="address to listen on, e.g. 0.0.0.0:7777")
    p_worker.add_argument("--max-connections", type=int, default=None,
                          help="serve this many master connections, then "
                               "exit (default: serve forever)")

    p_serve = sub.add_parser(
        "serve",
        help="scan-as-a-service daemon: one warm farm + cross-request result "
             "cache + cost-aware admission, serving many concurrent clients",
    )
    p_serve.add_argument("study", nargs="?", default=None,
                         help="study directory (default: the built-in "
                              "249-SNP chromosome-scale panel)")
    p_serve.add_argument("--bind", default="127.0.0.1:7788", metavar="HOST:PORT",
                         help="address to listen on (default 127.0.0.1:7788; "
                              "port 0 binds an ephemeral port)")
    p_serve.add_argument("--status", action="store_true",
                         help="probe the daemon at --bind and print its "
                              "status (cache, admission, farm health, "
                              "per-tenant metrics) instead of starting one")
    p_serve.add_argument("--journal-dir", default=None, metavar="DIR",
                         help="journal every in-flight scan's completed "
                              "windows to JSONL files in DIR; a daemon "
                              "restarted on the same DIR replays journaled "
                              "windows instead of recomputing them "
                              "(fingerprint-identical reports)")
    p_serve.add_argument("--bed", default=None, metavar="PREFIX",
                         help="serve a PLINK .bed/.bim/.fam fileset "
                              "(memory-mapped, implies --packed)")
    p_serve.add_argument("--vcf", default=None, metavar="PATH",
                         help="serve a VCF (.vcf/.vcf.gz; implies --packed)")
    p_serve.add_argument("--pheno", default=None, metavar="PATH",
                         help="phenotype sidecar for --vcf")
    p_serve.add_argument("--statistic", default="t1",
                         choices=["t1", "t2", "t3", "t4", "lrt"],
                         help="the statistic this daemon evaluates (one "
                              "daemon = one evaluator recipe)")
    p_serve.add_argument("--chunk-size", type=int, default=None,
                         help="individuals per worker message for the "
                              "chunked backends")
    p_serve.add_argument("--packed", action="store_true",
                         help="run the substrate on the 2-bit packed panel")
    p_serve.add_argument("--hosts", nargs="+", default=None, metavar="HOST:PORT",
                         help="remote worker hosts for the 'remote' backend")
    p_serve.add_argument("--steal-mode", default="master",
                         choices=["master", "shm"],
                         help="chunk-queue substrate of the process farms")
    p_serve.add_argument("--cost-model", default=None, metavar="PATH",
                         help="calibrated evaluation-cost model JSON; prices "
                              "requests for admission and drives "
                              "cost-balanced chunking")
    p_serve.add_argument("--cache-bytes", type=int, default=None,
                         help="bytes budget of the cross-request window-"
                              "result cache (default 64 MiB; 0 disables)")
    p_serve.add_argument("--max-active", type=int, default=4,
                         help="requests executing concurrently (default 4)")
    p_serve.add_argument("--max-queued", type=int, default=16,
                         help="requests waiting for a slot before new "
                              "arrivals are rejected (default 16)")
    p_serve.add_argument("--max-inflight-per-client", type=int, default=2,
                         help="per-tenant cap on concurrent requests "
                              "(default 2)")
    p_serve.add_argument("--max-cost-seconds", type=float, default=None,
                         help="budget on the summed estimated cost of "
                              "admitted-but-unfinished work (default: "
                              "unlimited)")
    p_serve.add_argument("--over-budget", default="queue",
                         choices=["queue", "reject"],
                         help="what happens to a request exceeding "
                              "--max-cost-seconds: wait its turn or be "
                              "rejected (default: queue)")
    _add_backend_arguments(p_serve, default_backend="process-shm", default_seed=0)

    return parser


def _load_study_dataset(path: str | None):
    from .experiments.datasets import lille51
    from .genetics.io import read_study_tables

    if path is None:
        return lille51().dataset
    dataset, _freq, _ld = read_study_tables(path)
    return dataset


def _panel_flags_error(command: str, args: argparse.Namespace) -> str | None:
    """Validate the study/--bed/--vcf/--pheno combination; None when sane."""
    sources = [
        name
        for name, present in (
            ("a study directory", args.study is not None),
            ("--bed", args.bed is not None),
            ("--vcf", args.vcf is not None),
        )
        if present
    ]
    if len(sources) > 1:
        return (f"{command} takes one panel source, not both "
                + " and ".join(sources))
    if args.pheno is not None and args.vcf is None:
        return f"{command} --pheno only applies to --vcf panels"
    return None


def _load_panel(args: argparse.Namespace):
    """The panel a scan/serve command operates on (study, .bed, or VCF)."""
    if args.bed is not None:
        from .genetics.io import read_bed

        return read_bed(args.bed)
    if args.vcf is not None:
        from .genetics.io import read_vcf

        return read_vcf(args.vcf, pheno=args.pheno)
    if args.study is None:
        from .experiments.datasets import large249

        return large249().dataset
    return _load_study_dataset(args.study)


def _load_cost_model(path: str | None):
    if path is None:
        return None
    import json

    from .parallel.pvm import EvaluationCostModel

    with open(path, "r", encoding="utf-8") as fh:
        return EvaluationCostModel.from_json(json.load(fh))


def _cmd_simulate(args: argparse.Namespace) -> int:
    from .genetics.io import write_study_tables
    from .genetics.simulate import lille_like_study

    study = lille_like_study(
        seed=args.seed,
        n_snps=args.n_snps,
        n_affected=args.n_affected,
        n_unaffected=args.n_unaffected,
    )
    paths = write_study_tables(study.dataset, args.output)
    print(f"wrote study ({study.dataset.summary()})")
    for name, path in paths.items():
        print(f"  {name}: {path}")
    print(f"planted causal haplotype: {study.causal_snps}")
    return 0


def _cmd_evaluate(args: argparse.Namespace) -> int:
    from .stats.evaluation import HaplotypeEvaluator

    dataset = _load_study_dataset(args.study)
    evaluator = HaplotypeEvaluator(dataset, statistic=args.statistic)
    record = evaluator.evaluate_detailed(args.snps)
    print(f"haplotype {record.snps} (size {record.size})")
    print(f"fitness ({args.statistic.upper()}): {record.fitness:.3f}")
    for name in ("t1", "t2", "t3", "t4"):
        print(f"  {name.upper()}: {record.clump.statistic(name):.3f}")
    if args.significance:
        p_values = evaluator.significance(args.snps)
        for name, p in p_values.items():
            print(f"  Monte-Carlo p({name.upper()}): {p:.4f}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    from .core.config import GAConfig
    from .runtime.service import RunRequest, RunService

    config = GAConfig(
        population_size=args.population_size,
        max_haplotype_size=args.max_size,
        termination_stagnation=args.stagnation,
        max_generations=args.max_generations,
        seed=args.seed,
    )
    if args.connect is not None:
        if args.hosts or args.study is not None:
            print("run --connect executes on the daemon's panel and "
                  "substrate; drop the study argument and --hosts",
                  file=sys.stderr)
            return 2
        from .runtime.client import ScanClient

        with ScanClient(
            args.connect,
            client_id=args.client_id,
            retry=_retry_policy(args.retries),
        ) as client:
            run = client.run(
                RunRequest(config=config, statistic=args.statistic),
                timeout=args.timeout,
            )
        result = run.result
        print(
            f"finished after {result.n_generations} generations, "
            f"{result.n_evaluations} evaluations ({result.termination_reason}), "
            f"{result.elapsed_seconds:.1f}s (served by {args.connect})"
        )
        print(run.summary_line())
        for row in result.summary_rows():
            print(
                f"  size {row['size']}: [{row['haplotype']}] "
                f"fitness {row['fitness']:.3f} "
                f"(found after {row['evaluations_to_best']} evaluations)"
            )
        return 0
    dataset = _load_study_dataset(args.study)
    if args.hosts and args.backend not in (None, "remote"):
        print(f"run --hosts requires --backend remote, not {args.backend!r}",
              file=sys.stderr)
        return 2
    backend = args.backend or (
        "remote" if args.hosts else ("process" if args.workers > 1 else "serial")
    )
    if backend == "remote" and not args.hosts:
        print("run --backend remote requires --hosts HOST:PORT ...",
              file=sys.stderr)
        return 2
    service = RunService(dataset)
    run = service.run(
        RunRequest(
            config=config,
            statistic=args.statistic,
            backend=backend,
            # an explicit --backend honours --workers exactly (even 1); only
            # the serial default leaves the worker count to the backend —
            # and a remote pool runs one slave per host entry
            n_workers=(
                None if backend == "remote"
                else args.workers if args.backend or args.workers > 1
                else None
            ),
            chunk_size=args.chunk_size,
            packed=args.packed,
            hosts=tuple(args.hosts) if args.hosts else None,
            steal_mode=args.steal_mode,
        )
    )
    result = run.result
    print(
        f"finished after {result.n_generations} generations, "
        f"{result.n_evaluations} evaluations ({result.termination_reason}), "
        f"{result.elapsed_seconds:.1f}s"
    )
    print(run.summary_line())
    for row in result.summary_rows():
        print(
            f"  size {row['size']}: [{row['haplotype']}] "
            f"fitness {row['fitness']:.3f} "
            f"(found after {row['evaluations_to_best']} evaluations)"
        )
    return 0


def _cmd_scan(args: argparse.Namespace) -> int:
    from .core.config import GAConfig
    from .parallel.farm import FarmRecoveryPolicy
    from .scan import run_scan

    if args.connect is not None:
        # served scans run on the daemon's panel and substrate: every local
        # execution/dataset flag is either meaningless or misleading here
        for flag, present in (
            ("--checkpoint", args.checkpoint is not None),
            ("--resume", args.resume),
            ("--hosts", bool(args.hosts)),
            ("--bed", args.bed is not None),
            ("--vcf", args.vcf is not None),
            ("--self-heal", args.self_heal),
            ("a study argument", args.study is not None),
        ):
            if present:
                print(f"scan --connect serves the daemon's panel; {flag} "
                      f"cannot be combined with it", file=sys.stderr)
                return 2
        from .runtime.client import ScanClient

        config = GAConfig(
            population_size=args.population_size,
            min_haplotype_size=2,
            max_haplotype_size=min(args.max_size, args.window_size),
            termination_stagnation=args.stagnation,
            max_generations=args.max_generations,
        )
        with ScanClient(
            args.connect,
            client_id=args.client_id,
            retry=_retry_policy(args.retries),
        ) as client:
            report = run_scan(
                None,
                window_size=args.window_size,
                overlap=args.window_overlap,
                config=config,
                seed=args.seed,
                statistic=args.statistic,
                client=client,
                client_timeout=args.timeout,
            )
        print(report.format(top=args.top))
        print()
        print(report.summary_line())
        return 0
    if args.resume and args.checkpoint is None:
        print("scan --resume requires --checkpoint PATH", file=sys.stderr)
        return 2
    if args.self_heal and args.backend in ("serial", "threads"):
        print(
            f"scan --self-heal needs a process-farm backend "
            f"(process, process-shm, async, remote), not {args.backend!r}",
            file=sys.stderr,
        )
        return 2
    if args.backend == "remote" and not args.hosts:
        print("scan --backend remote requires --hosts HOST:PORT ...",
              file=sys.stderr)
        return 2
    if args.hosts and args.backend != "remote":
        print(f"scan --hosts requires --backend remote, not {args.backend!r}",
              file=sys.stderr)
        return 2
    if args.steal_mode != "master" and args.backend in ("serial", "threads", "remote"):
        print(
            f"scan --steal-mode shm needs a local process-farm backend "
            f"(process, process-shm, async), not {args.backend!r}",
            file=sys.stderr,
        )
        return 2
    error = _panel_flags_error("scan", args)
    if error is not None:
        print(error, file=sys.stderr)
        return 2
    # .bed filesets and VCF GT fields load straight into the 2-bit panel, so
    # scanning them byte-wise would only add an unpack step: both imply
    # --packed
    packed = args.packed or args.bed is not None or args.vcf is not None
    dataset = _load_panel(args)
    cost_model = _load_cost_model(args.cost_model)
    config = GAConfig(
        population_size=args.population_size,
        min_haplotype_size=2,
        max_haplotype_size=min(args.max_size, args.window_size),
        termination_stagnation=args.stagnation,
        max_generations=args.max_generations,
    )
    report = run_scan(
        dataset,
        window_size=args.window_size,
        overlap=args.window_overlap,
        config=config,
        seed=args.seed,
        statistic=args.statistic,
        backend=args.backend,
        n_workers=args.workers,
        chunk_size=args.chunk_size,
        jobs=args.jobs,
        # 0 is the unlimited sentinel; negatives fall through to
        # execute_plan's validation and fail loudly
        max_pending=args.max_pending if args.max_pending != 0 else None,
        cost_model=cost_model,
        recovery=FarmRecoveryPolicy(respawn=True) if args.self_heal else None,
        checkpoint_path=args.checkpoint,
        resume=args.resume,
        packed=packed,
        hosts=tuple(args.hosts) if args.hosts else None,
        steal_mode=args.steal_mode,
    )
    print(report.format(top=args.top))
    print()
    print(report.summary_line())
    return 0


def _cmd_table1(_args: argparse.Namespace) -> int:
    from .experiments.table1 import run_table1

    print(run_table1().format())
    return 0


def _cmd_figure4(args: argparse.Namespace) -> int:
    from .experiments.figure4 import run_figure4

    sizes = tuple(range(2, args.max_size + 1))
    print(run_figure4(sizes=sizes, n_samples=args.samples).format())
    return 0


def _cmd_table2(args: argparse.Namespace) -> int:
    from .experiments.table2 import paper_scale_config, quick_config, run_table2

    config = quick_config() if args.quick else paper_scale_config()
    result = run_table2(
        config=config,
        n_runs=args.runs,
        seed=args.seed,
        backend=args.backend,
        n_workers=args.workers,
    )
    print(result.format())
    return 0


def _cmd_ablation(args: argparse.Namespace) -> int:
    from .experiments.ablation import run_ablation

    print(
        run_ablation(
            n_runs=args.runs,
            seed=args.seed,
            backend=args.backend,
            n_workers=args.workers,
        ).format()
    )
    return 0


def _cmd_speedup(args: argparse.Namespace) -> int:
    from .experiments.speedup import run_measured_speedup, run_simulated_speedup

    if args.measured and args.backend == "serial":
        print("speedup --measured times a parallel farm; pick --backend "
              "threads, process or process-shm", file=sys.stderr)
        return 2
    print(run_simulated_speedup(seed=args.seed).format())
    if args.measured:
        # 1 is always present: it is the in-process serial baseline the
        # parallel timings are normalised against
        worker_counts = sorted({1, args.workers}) if args.workers else None
        print()
        print(run_measured_speedup(backend=args.backend,
                                   chunk_size=args.chunk_size,
                                   worker_counts=worker_counts,
                                   seed=args.seed).format())
    return 0


def _cmd_landscape(args: argparse.Namespace) -> int:
    from .experiments.landscape_study import run_landscape_study

    sizes = tuple(range(2, args.max_size + 1))
    print(run_landscape_study(panel_size=args.panel_size, sizes=sizes).format())
    return 0


def _cmd_robustness(args: argparse.Namespace) -> int:
    from .experiments.robustness import run_robustness

    result = run_robustness(
        n_runs=args.runs,
        seed=args.seed,
        backend=args.backend,
        n_workers=args.workers,
    )
    print(result.format())
    print(f"mean similarity across sizes: {result.mean_similarity():.3f}")
    return 0


def _cmd_objectives(args: argparse.Namespace) -> int:
    from .experiments.objectives import run_objective_comparison

    print(
        run_objective_comparison(
            n_per_size=args.per_size,
            seed=args.seed,
            backend=args.backend,
            n_workers=args.workers,
        ).format()
    )
    return 0


def _cmd_worker(args: argparse.Namespace) -> int:
    import threading
    from multiprocessing import Pipe

    from .runtime.remote import parse_host, serve

    # announce only once serve() reports readiness over the pipe: by then the
    # listener is bound (the banner carries the resolved ephemeral port) and
    # the SIGTERM/SIGINT drain handlers are installed
    recv_end, send_end = Pipe(duplex=False)

    def announce() -> None:
        try:
            host, port = recv_end.recv()
        except (EOFError, OSError):  # serve failed before binding
            return
        print(f"repro-ga worker host listening on {host}:{port}", flush=True)

    threading.Thread(target=announce, daemon=True).start()
    serve(parse_host(args.bind), max_connections=args.max_connections,
          _ready=send_end)
    return 0


def _retry_policy(retries: int | None):
    """Map a --retries flag to a client RetryPolicy (None = client default,
    0 = fail on the first transport loss)."""
    from .runtime.client import RetryPolicy

    return RetryPolicy() if retries is None else RetryPolicy(max_attempts=retries + 1)


def _print_status(status: dict) -> None:
    cache = status["result_cache"]
    admission = status["admission"]
    print(
        f"scan service on {status['backend']}: {status['n_snps']} SNPs "
        f"({'packed' if status['packed'] else 'byte'} panel, statistic "
        f"{status['statistic'].upper()}), up {status['uptime_seconds']:.0f}s, "
        f"{status['n_completed_requests']} request(s) completed"
    )
    print(f"  {status['summary']}")
    print(
        f"  result cache: {cache['n_entries']} window(s), "
        f"{cache['bytes']}/{cache['max_bytes']} bytes, "
        f"{cache['n_hits']} hit(s) / {cache['n_misses']} miss(es), "
        f"{cache['n_evictions']} eviction(s)"
    )
    print(
        f"  admission: {admission['n_active']} active, "
        f"{admission['n_queued']} queued "
        f"({admission['outstanding_cost_seconds']:.3f}s est. outstanding), "
        f"{admission['n_admitted']} admitted / "
        f"{admission['n_rejected']} rejected / "
        f"{admission.get('n_cancelled', 0)} cancelled, "
        f"{admission['total_wait_seconds']:.3f}s total queue wait"
    )
    health = status.get("health")
    if health is not None:
        farm = health["farm"]
        alive = farm["n_alive_workers"]
        alive_text = "?" if alive is None else str(alive)
        line = (
            f"  farm: {alive_text}/{farm['n_workers']} worker(s) alive "
            f"on {farm['backend']}"
        )
        recovery = farm["recovery"]
        if recovery is not None:
            line += (
                f", {recovery['n_worker_deaths']} death(s) / "
                f"{recovery['n_chunks_replayed']} chunk(s) replayed / "
                f"{recovery['n_worker_respawns']} respawn(s)"
            )
        print(line)
        for row in farm["hosts"] or ():
            state = "alive" if row["alive"] else (
                f"dead (retry in {row['reconnect_in_seconds']:.1f}s)"
            )
            print(
                f"    host {row['host']} (worker {row['worker']}): {state}, "
                f"last heartbeat {row['seconds_since_heartbeat']:.1f}s ago"
            )
        journal = health["journal"]
        if journal["dir"] is not None:
            print(
                f"  journal: {journal['dir']} — "
                f"{journal.get('n_inflight_scans', 0)} in-flight scan(s), "
                f"{journal['n_recovered_windows']} window(s) replayed across "
                f"{journal['n_recovered_scans']} recovered scan(s)"
            )
    for client_id, row in sorted(status["tenants"].items()):
        stats = row["stats"]
        print(
            f"  tenant {client_id}: {row['n_requests']} request(s) "
            f"({row['n_scans']} scan(s), {row['n_runs']} run(s)), "
            f"{row['n_windows']} window(s) of which "
            f"{row['n_result_cache_hits']} replayed, "
            f"{stats['n_requests']} evaluation request(s) -> "
            f"{stats['n_evaluations']} evaluated, "
            f"{row['n_rejected']} rejected, "
            f"{row['admission_wait_seconds']:.3f}s queued"
        )


def _cmd_serve(args: argparse.Namespace) -> int:
    if args.status:
        from .runtime.client import ScanClient

        with ScanClient(args.bind, client_id="status-probe") as client:
            _print_status(client.status())
        return 0
    error = _panel_flags_error("serve", args)
    if error is not None:
        print(error, file=sys.stderr)
        return 2
    if args.backend == "remote" and not args.hosts:
        print("serve --backend remote requires --hosts HOST:PORT ...",
              file=sys.stderr)
        return 2
    if args.hosts and args.backend != "remote":
        print(f"serve --hosts requires --backend remote, not {args.backend!r}",
              file=sys.stderr)
        return 2
    from .runtime.server import AdmissionPolicy, ScanServer

    packed = args.packed or args.bed is not None or args.vcf is not None
    dataset = _load_panel(args)
    policy = AdmissionPolicy(
        max_active=args.max_active,
        max_queued=args.max_queued,
        max_inflight_per_client=args.max_inflight_per_client,
        max_outstanding_cost_seconds=args.max_cost_seconds,
        over_budget=args.over_budget,
    )
    server = ScanServer(
        dataset,
        statistic=args.statistic,
        backend=args.backend,
        n_workers=args.workers,
        chunk_size=args.chunk_size,
        cost_model=_load_cost_model(args.cost_model),
        packed=packed,
        hosts=tuple(args.hosts) if args.hosts else None,
        steal_mode=args.steal_mode,
        **({} if args.cache_bytes is None else {"cache_bytes": args.cache_bytes}),
        admission=policy,
        journal_dir=args.journal_dir,
    )
    try:
        host, port = server.start(args.bind)
        # handlers first, banner second: a SIGTERM racing the announcement
        # must already drain cleanly
        with server.signal_handlers():
            print(
                f"repro-ga scan service on {host}:{port} — backend "
                f"{server.scheduler.backend}, {dataset.n_snps} SNPs, statistic "
                f"{server.statistic.upper()} (SIGTERM/SIGINT drain and exit)",
                flush=True,
            )
            server.wait(install_signal_handlers=False)
    finally:
        server.close()
    print("scan service shut down cleanly", flush=True)
    return 0


_COMMANDS = {
    "simulate": _cmd_simulate,
    "evaluate": _cmd_evaluate,
    "run": _cmd_run,
    "scan": _cmd_scan,
    "table1": _cmd_table1,
    "figure4": _cmd_figure4,
    "table2": _cmd_table2,
    "ablation": _cmd_ablation,
    "speedup": _cmd_speedup,
    "landscape": _cmd_landscape,
    "robustness": _cmd_robustness,
    "objectives": _cmd_objectives,
    "worker": _cmd_worker,
    "serve": _cmd_serve,
}


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    handler = _COMMANDS[args.command]
    return handler(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
