"""Tests of the Table-2 harness (GA results over repeated runs)."""

import pytest

from repro.experiments.table2 import (
    PAPER_TABLE2_REFERENCE,
    paper_scale_config,
    quick_config,
    run_table2,
)


class TestConfigs:
    def test_paper_scale_config_matches_section_521(self):
        config = paper_scale_config()
        assert config.population_size == 150
        assert config.crossover_rate == pytest.approx(0.9)
        assert config.termination_stagnation == 100
        assert config.max_haplotype_size == 6
        assert config.random_immigrant_stagnation == 20

    def test_overrides(self):
        config = quick_config(population_size=30)
        assert config.population_size == 30

    def test_paper_reference_is_monotone_in_size(self):
        fitnesses = [PAPER_TABLE2_REFERENCE[s]["fitness"] for s in (3, 4, 5, 6)]
        assert fitnesses == sorted(fitnesses)


class TestRunTable2:
    @pytest.fixture(scope="class")
    def result(self, request):
        small_study = request.getfixturevalue("small_study")
        config = quick_config(
            population_size=24, max_haplotype_size=4,
            termination_stagnation=4, max_generations=8,
        )
        return run_table2(
            study=small_study, config=config, n_runs=2,
            exhaustive_reference_sizes=(2,), seed=1,
        )

    def test_one_row_per_size(self, result):
        assert [row.size for row in result.rows] == [2, 3, 4]
        assert result.n_runs == 2
        assert len(result.run_results) == 2

    def test_row_contents(self, result):
        for row in result.rows:
            assert len(row.best_snps) == row.size
            assert row.best_fitness >= row.mean_fitness - 1e-9
            assert row.min_evaluations <= row.mean_evaluations
            assert row.reference_fitness >= row.best_fitness - 1e-9
            assert 0 <= row.n_runs_matching_reference <= result.n_runs

    def test_reference_sources(self, result):
        assert result.row(2).reference_source == "exhaustive"
        assert result.row(3).reference_source == "best_of_runs"
        # the best-of-runs reference coincides with the best run, so deviation >= 0
        assert result.row(3).deviation >= -1e-9
        # exhaustive reference can only be at least as good as any GA run
        assert result.row(2).deviation >= -1e-9

    def test_fitness_grows_with_size(self, result):
        """The Table-2 shape: larger haplotypes reach larger raw fitness."""
        fitnesses = [row.best_fitness for row in result.rows]
        assert fitnesses[-1] > fitnesses[0]

    def test_ga_explores_tiny_fraction_of_search_space(self, result):
        """The paper's headline claim for Table 2 vs Table 1."""
        import math

        total_space = sum(math.comb(14, k) for k in (2, 3, 4))
        for run in result.run_results:
            assert run.n_evaluations < total_space

    def test_row_lookup_and_format(self, result):
        assert result.row(2).size == 2
        with pytest.raises(KeyError):
            result.row(9)
        text = result.format()
        assert "Table 2" in text
        assert "Dev" in text

    def test_validation(self, small_study):
        with pytest.raises(ValueError):
            run_table2(study=small_study, n_runs=0)
