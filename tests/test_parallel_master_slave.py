"""Tests of the multiprocessing master/slave evaluator.

The worker pool is real (forked processes), so these tests keep the batches
small; the key property is bit-identical agreement with the serial evaluator.
"""

import pytest

from repro.parallel.master_slave import MasterSlaveEvaluator, default_worker_count
from repro.parallel.serial import SerialEvaluator


def _product_fitness(snps):
    value = 1.0
    for s in snps:
        value *= (s + 1)
    return value


class TestConfiguration:
    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            MasterSlaveEvaluator(_product_fitness, n_workers=0)
        with pytest.raises(ValueError):
            MasterSlaveEvaluator(_product_fitness, chunk_size=0)

    def test_default_worker_count_positive(self):
        assert default_worker_count() >= 1


class TestEvaluation:
    def test_matches_serial_on_toy_fitness(self):
        batch = [(0, 1), (2,), (1, 3, 4), (5, 6)]
        serial = SerialEvaluator(_product_fitness).evaluate_batch(batch)
        with MasterSlaveEvaluator(_product_fitness, n_workers=2) as master_slave:
            parallel = master_slave.evaluate_batch(batch)
        assert parallel == pytest.approx(serial)

    def test_matches_serial_on_real_evaluator(self, small_evaluator):
        batch = [(0, 1), (2, 5, 9), (3, 4), (1, 6, 10)]
        serial = [small_evaluator.evaluate(snps) for snps in batch]
        with MasterSlaveEvaluator(small_evaluator, n_workers=2) as master_slave:
            parallel = master_slave.evaluate_batch(batch)
        assert parallel == pytest.approx(serial, rel=1e-12)

    def test_empty_batch(self):
        with MasterSlaveEvaluator(_product_fitness, n_workers=2) as master_slave:
            assert master_slave.evaluate_batch([]) == []

    def test_stats_and_single_evaluate(self):
        with MasterSlaveEvaluator(_product_fitness, n_workers=2) as master_slave:
            assert master_slave.evaluate((1, 2)) == pytest.approx(6.0)
            master_slave.evaluate_batch([(0,), (1,)])
            assert master_slave.stats.n_evaluations == 3
            assert master_slave.n_workers == 2

    def test_closed_evaluator_rejects_work(self):
        master_slave = MasterSlaveEvaluator(_product_fitness, n_workers=2)
        master_slave.close()
        with pytest.raises(RuntimeError):
            master_slave.evaluate_batch([(1,)])
        master_slave.close()  # idempotent

    def test_terminate_is_idempotent(self):
        master_slave = MasterSlaveEvaluator(_product_fitness, n_workers=2)
        master_slave.terminate()
        master_slave.terminate()
