"""Benchmark: shared-memory steal deques vs master-mediated stealing, plus
a localhost remote-backend parity run.

Measures what the shm-deque substrate was built for: dispatch latency.  With
master-mediated queues every chunk a slave runs costs a result→dispatch
round-trip through the master process; with the shared-memory deques the
master seeds whole batches into per-slave rings and slaves self-serve their
next chunk (and steal a victim's ring tail) without waking the master at
all.  On a *skewed-window-cost* trace — many cheap evaluations plus an
expensive minority, the regime of a chromosome scan with heterogeneous
clamped windows — the round-trips dominate the cheap majority, so the deque
substrate finishes the same work measurably faster on the identical farm.

Workload
--------
Evaluation cost is *modelled*, not measured: the fitness sleeps for the
paper's Figure-4 exponential cost ``base_seconds * growth ** (size - 1)``
(:class:`repro.parallel.pvm.EvaluationCostModel`'s calibration) and returns
a deterministic value, so the measurement isolates dispatch quality from
host core count.  Both modes evaluate the identical batches and must return
identical values and work counters (asserted).

The second section starts a real socket worker host on localhost
(:class:`repro.runtime.remote.LocalWorkerHost`), runs the same trace over
the ``remote`` transport and asserts checksum/counter parity — the
distributed backend is recorded as *correct*, not raced against the local
farms (two slaves on loopback measure socket overhead, not cluster scaling).

Records everything to ``BENCH_dist.json`` (diffable with
``scripts/bench_compare.py``, which also gates the ``*_gain*`` leaves).

Usage::

    python benchmarks/bench_dist.py            # full run
    python benchmarks/bench_dist.py --quick    # CI smoke
    python benchmarks/bench_dist.py -o out.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

import numpy as np

_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if os.path.isdir(_SRC) and _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.parallel.farm import ChunkedWorkerFarm, affinity_worker  # noqa: E402
from repro.parallel.pvm import EvaluationCostModel  # noqa: E402
from repro.runtime.remote import LocalWorkerHost, RemoteSlavePool  # noqa: E402

DEFAULT_OUTPUT = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "BENCH_dist.json"
)

N_WORKERS = 8
N_REMOTE_SLAVES = 2
TRACE_SEED = 0
N_SNPS = 240
EXPENSIVE_SIZE = 7
CHEAP_SIZE = 2


class CostModelFitness:
    """Picklable fitness whose runtime is the paper's cost model (a sleep)."""

    def __init__(self, base_seconds: float, growth_factor: float = 2.4) -> None:
        self.model = EvaluationCostModel(
            base_seconds=base_seconds, growth_factor=growth_factor
        )

    def __call__(self, snps) -> float:
        key = tuple(sorted(int(s) for s in snps))
        time.sleep(self.model.cost(len(key)))
        return float(sum(key)) / (1.0 + len(key))


class _FitnessFactory:
    """Picklable zero-argument factory the farm ships to every slave."""

    def __init__(self, fitness: CostModelFitness) -> None:
        self._fitness = fitness

    def __call__(self) -> CostModelFitness:
        return self._fitness


def skewed_trace(
    *, n_batches: int, n_expensive: int, n_cheap: int, seed: int = TRACE_SEED
) -> list[list[tuple[int, ...]]]:
    """Generation batches of mostly-cheap haplotypes with an expensive minority."""
    rng = np.random.default_rng(seed)
    batches = []
    for _ in range(n_batches):
        batch: list[tuple[int, ...]] = []
        seen: set[tuple[int, ...]] = set()

        def draw(size: int, count: int) -> None:
            while sum(1 for b in batch if len(b) == size) < count:
                key = tuple(
                    sorted(int(x) for x in rng.choice(N_SNPS, size, replace=False))
                )
                if key not in seen:
                    seen.add(key)
                    batch.append(key)

        draw(EXPENSIVE_SIZE, n_expensive)
        draw(CHEAP_SIZE, n_cheap)
        rng.shuffle(batch)
        batches.append([tuple(int(s) for s in b) for b in batch])
    return batches


def static_imbalance(batches: list[list[tuple[int, ...]]]) -> float:
    """Mean ratio of the most-loaded slave's expensive share to the fair share."""
    ratios = []
    for batch in batches:
        counts = [0] * N_WORKERS
        for key in batch:
            if len(key) == EXPENSIVE_SIZE:
                counts[affinity_worker(key, N_WORKERS)] += 1
        total = sum(counts)
        if total:
            ratios.append(max(counts) / (total / N_WORKERS))
    return float(np.mean(ratios)) if ratios else 1.0


def _drive(farm, batches, *, repetitions: int = 1) -> dict:
    """Evaluate the trace ``repetitions`` times on a warm farm; keep the best.

    The best-of-N elapsed filters OS scheduling jitter out of a
    latency-sensitive measurement; the checksum and work counters are
    asserted identical across repetitions (dedup caches are disabled, so
    every repetition does the full work).
    """
    timings = []
    n_requests = n_evaluations = 0
    checksum = 0.0
    with farm:
        for repetition in range(repetitions):
            rep_requests = rep_evaluations = 0
            rep_checksum = 0.0
            start = time.perf_counter()
            for batch in batches:
                values, stats = farm.evaluate(batch)
                rep_checksum += sum(values)
                rep_requests += stats.n_requests
                rep_evaluations += stats.n_evaluations
            timings.append(time.perf_counter() - start)
            if repetition == 0:
                n_requests, n_evaluations = rep_requests, rep_evaluations
                checksum = round(rep_checksum, 9)
            elif (rep_requests, rep_evaluations, round(rep_checksum, 9)) != (
                n_requests, n_evaluations, checksum
            ):
                raise AssertionError("repetitions diverged on the same farm")
    elapsed = min(timings)
    return {
        "elapsed_seconds": elapsed,
        "evaluations_per_second": n_evaluations / elapsed if elapsed > 0 else 0.0,
        "n_requests": n_requests,
        "n_evaluations": n_evaluations,
        "checksum": checksum,
    }


def run_farm_mode(
    batches: list[list[tuple[int, ...]]],
    *,
    steal_mode: str,
    base_seconds: float,
    repetitions: int = 1,
) -> dict:
    farm = ChunkedWorkerFarm(
        _FitnessFactory(CostModelFitness(base_seconds)),
        N_WORKERS,
        chunk_size=1,
        worker_cache_size=0,
        steal=True,
        steal_mode=steal_mode,
        # master mode gets no prefetch so every chunk pays the full dispatch
        # round-trip — the PR-4 configuration the deques are racing against
        max_inflight=1,
    )
    result = _drive(farm, batches, repetitions=repetitions)
    result["mode"] = f"steal_{steal_mode}"
    result["n_workers"] = N_WORKERS
    return result


def run_remote_parity(
    batches: list[list[tuple[int, ...]]], *, base_seconds: float
) -> dict:
    # realistic remote chunking: socket round-trips are amortised over
    # multi-key chunks with prefetch, unlike the latency-probing local modes
    host = LocalWorkerHost()
    try:
        pool = RemoteSlavePool(
            _FitnessFactory(CostModelFitness(base_seconds)),
            [host.host] * N_REMOTE_SLAVES,
            chunk_size=8,
            worker_cache_size=0,
            steal=True,
            max_inflight=2,
        )
        result = _drive(pool, batches)
    finally:
        host.close()
    result["mode"] = "remote_localhost"
    result["n_workers"] = N_REMOTE_SLAVES
    return result


def run_benchmark(*, quick: bool) -> dict:
    if quick:
        base_seconds, n_batches, n_expensive, n_cheap, repetitions = 5e-5, 2, 8, 800, 2
    else:
        base_seconds, n_batches, n_expensive, n_cheap, repetitions = 5e-5, 3, 8, 800, 3
    batches = skewed_trace(
        n_batches=n_batches, n_expensive=n_expensive, n_cheap=n_cheap
    )
    model = EvaluationCostModel(base_seconds=base_seconds)
    serial_seconds = sum(model.cost(len(key)) for batch in batches for key in batch)
    report: dict = {
        "benchmark": "dist",
        "trace": {
            "seed": TRACE_SEED,
            "n_batches": n_batches,
            "n_expensive_per_batch": n_expensive,
            "n_cheap_per_batch": n_cheap,
            "expensive_size": EXPENSIVE_SIZE,
            "cheap_size": CHEAP_SIZE,
            "base_seconds": base_seconds,
            "modelled_serial_seconds": serial_seconds,
            "static_imbalance": static_imbalance(batches),
        },
        "results": {},
        "headline": {},
    }
    report["trace"]["repetitions"] = repetitions
    master = run_farm_mode(
        batches, steal_mode="master", base_seconds=base_seconds,
        repetitions=repetitions,
    )
    shm = run_farm_mode(
        batches, steal_mode="shm", base_seconds=base_seconds,
        repetitions=repetitions,
    )
    remote = run_remote_parity(batches, base_seconds=base_seconds)
    # all three substrates must do the identical work and agree bit-for-bit;
    # a divergence is a dispatch correctness bug, not a timing artefact
    for label, other in (("shm", shm), ("remote", remote)):
        if other["checksum"] != master["checksum"]:
            raise AssertionError(
                f"{label}/master results diverged: "
                f"{other['checksum']} != {master['checksum']}"
            )
        if (other["n_requests"], other["n_evaluations"]) != (
            master["n_requests"], master["n_evaluations"]
        ):
            raise AssertionError(f"{label}/master work counters diverged")
    report["results"][f"master_steal_{N_WORKERS}w"] = master
    report["results"][f"shm_deque_steal_{N_WORKERS}w"] = shm
    report["results"][f"remote_localhost_{N_REMOTE_SLAVES}w"] = remote
    report["headline"][f"shm_deque_vs_master_steal_gain_at_{N_WORKERS}_workers"] = (
        master["elapsed_seconds"] / shm["elapsed_seconds"]
    )
    report["headline"]["remote_checksum_parity"] = 1.0
    return report


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="CI-sized smoke run")
    parser.add_argument("-o", "--output", default=DEFAULT_OUTPUT,
                        help=f"output JSON path (default {DEFAULT_OUTPUT})")
    args = parser.parse_args(argv)

    report = run_benchmark(quick=args.quick)

    print(
        f"trace: static imbalance {report['trace']['static_imbalance']:.2f}x, "
        f"modelled serial {report['trace']['modelled_serial_seconds']:.2f}s"
    )
    for label, result in report["results"].items():
        print(
            f"  {label:22s} {result['elapsed_seconds']:7.2f} s "
            f"({result['evaluations_per_second']:7.1f} evals/s, "
            f"{result['n_evaluations']} evals)"
        )
    for key, gain in report["headline"].items():
        print(f"{key}: {gain:.2f}x")

    with open(args.output, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
