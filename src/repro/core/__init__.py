"""The paper's contribution: the parallel adaptive multi-population GA."""

from .adaptive import AdaptiveOperatorController, OperatorRateSnapshot
from .config import GAConfig
from .ga import AdaptiveMultiPopulationGA
from .history import GAResult, GenerationRecord, RunHistory
from .immigrants import ImmigrantPlan, RandomImmigrantPolicy
from .individual import HaplotypeIndividual, random_individual
from .operators import (
    AugmentationMutation,
    CrossoverOperator,
    InterPopulationCrossover,
    IntraPopulationCrossover,
    MutationOperator,
    OperatorApplication,
    PointMutation,
    ReductionMutation,
)
from .population import MultiPopulation, SubPopulation, allocate_capacities
from .selection import roulette_selection, select_parent_pair, tournament_selection
from .termination import TerminationCriteria, TerminationState

__all__ = [
    "GAConfig",
    "AdaptiveMultiPopulationGA",
    "GAResult",
    "GenerationRecord",
    "RunHistory",
    "HaplotypeIndividual",
    "random_individual",
    "MultiPopulation",
    "SubPopulation",
    "allocate_capacities",
    "AdaptiveOperatorController",
    "OperatorRateSnapshot",
    "RandomImmigrantPolicy",
    "ImmigrantPlan",
    "TerminationCriteria",
    "TerminationState",
    "tournament_selection",
    "roulette_selection",
    "select_parent_pair",
    "MutationOperator",
    "CrossoverOperator",
    "OperatorApplication",
    "PointMutation",
    "ReductionMutation",
    "AugmentationMutation",
    "IntraPopulationCrossover",
    "InterPopulationCrossover",
]
