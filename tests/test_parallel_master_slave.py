"""Tests of the multiprocessing master/slave evaluator.

The worker pool is real (forked processes), so these tests keep the batches
small; the key property is bit-identical agreement with the serial evaluator.
"""

import pytest

from repro.parallel.master_slave import MasterSlaveEvaluator, default_worker_count
from repro.parallel.serial import SerialEvaluator


def _product_fitness(snps):
    value = 1.0
    for s in snps:
        value *= (s + 1)
    return value


class TestConfiguration:
    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            MasterSlaveEvaluator(_product_fitness, n_workers=0)
        with pytest.raises(ValueError):
            MasterSlaveEvaluator(_product_fitness, chunk_size=0)

    @pytest.mark.parametrize("n_workers", [0, -1, -4, 1.5, True])
    def test_rejects_non_positive_or_non_integer_worker_counts(self, n_workers):
        with pytest.raises(ValueError, match="positive integer"):
            MasterSlaveEvaluator(_product_fitness, n_workers=n_workers)

    def test_rejects_unknown_dispatch(self):
        with pytest.raises(ValueError, match="dispatch"):
            MasterSlaveEvaluator(_product_fitness, dispatch="quantum")

    def test_requires_exactly_one_fitness_source(self):
        with pytest.raises(ValueError):
            MasterSlaveEvaluator()

    def test_default_worker_count_positive(self):
        assert default_worker_count() >= 1


class TestEvaluation:
    def test_matches_serial_on_toy_fitness(self):
        batch = [(0, 1), (2,), (1, 3, 4), (5, 6)]
        serial = SerialEvaluator(_product_fitness).evaluate_batch(batch)
        with MasterSlaveEvaluator(_product_fitness, n_workers=2) as master_slave:
            parallel = master_slave.evaluate_batch(batch)
        assert parallel == pytest.approx(serial)

    def test_matches_serial_on_real_evaluator(self, small_evaluator):
        batch = [(0, 1), (2, 5, 9), (3, 4), (1, 6, 10)]
        serial = [small_evaluator.evaluate(snps) for snps in batch]
        with MasterSlaveEvaluator(small_evaluator, n_workers=2) as master_slave:
            parallel = master_slave.evaluate_batch(batch)
        assert parallel == pytest.approx(serial, rel=1e-12)

    def test_empty_batch(self):
        with MasterSlaveEvaluator(_product_fitness, n_workers=2) as master_slave:
            assert master_slave.evaluate_batch([]) == []

    def test_stats_and_single_evaluate(self):
        with MasterSlaveEvaluator(_product_fitness, n_workers=2) as master_slave:
            assert master_slave.evaluate((1, 2)) == pytest.approx(6.0)
            master_slave.evaluate_batch([(0,), (1,)])
            assert master_slave.stats.n_evaluations == 3
            assert master_slave.n_workers == 2

    def test_closed_evaluator_rejects_work(self):
        master_slave = MasterSlaveEvaluator(_product_fitness, n_workers=2)
        master_slave.close()
        with pytest.raises(RuntimeError):
            master_slave.evaluate_batch([(1,)])
        master_slave.close()  # idempotent

    def test_terminate_is_idempotent(self):
        master_slave = MasterSlaveEvaluator(_product_fitness, n_workers=2)
        master_slave.terminate()
        master_slave.terminate()

    def test_context_manager_closes_and_close_stays_idempotent(self):
        with MasterSlaveEvaluator(_product_fitness, n_workers=2) as master_slave:
            master_slave.evaluate_batch([(1, 2)])
        with pytest.raises(RuntimeError):
            master_slave.evaluate_batch([(3,)])
        master_slave.close()  # after context exit: still a no-op
        master_slave.terminate()


def _failing_fitness(snps):
    raise RuntimeError("boom on " + repr(tuple(snps)))


def _fail_on_marker_fitness(snps):
    if any(s >= 90 for s in tuple(snps)):
        raise RuntimeError("marker haplotype")
    return float(sum(snps)) + 1.0


class TestChunkedDispatch:
    def test_matches_individual_dispatch(self, small_evaluator):
        batch = [(0, 1), (2, 5, 9), (3, 4), (0, 1), (1, 6, 10)]
        with MasterSlaveEvaluator(small_evaluator, n_workers=2) as individual:
            expected = individual.evaluate_batch(batch)
        with MasterSlaveEvaluator(
            small_evaluator, n_workers=2, dispatch="chunked"
        ) as chunked:
            assert chunked.dispatch == "chunked"
            assert chunked.evaluate_batch(batch) == pytest.approx(expected, rel=1e-12)

    def test_small_chunks_cover_the_whole_batch(self):
        with MasterSlaveEvaluator(
            _product_fitness, n_workers=2, dispatch="chunked", chunk_size=1,
            dedup=False, cache_size=0,
        ) as chunked:
            batch = [(i,) for i in range(7)]
            assert chunked.evaluate_batch(batch) == [float(i + 1) for i in range(7)]

    def test_worker_side_cache_reported_in_merged_stats(self):
        # master fast path off: repeats must travel to the slaves, whose
        # affinity-pinned local LRUs answer them without re-evaluating
        with MasterSlaveEvaluator(
            _product_fitness, n_workers=2, dispatch="chunked",
            dedup=False, cache_size=0,
        ) as chunked:
            chunked.evaluate_batch([(1,), (2,), (3,)])
            chunked.evaluate_batch([(1,), (2,), (4,)])
            assert chunked.stats.n_requests == 6
            assert chunked.stats.n_evaluations == 4
            assert chunked.stats.n_cache_hits == 2
            assert chunked.stats.backend_seconds >= 0.0

    def test_worker_exception_propagates_with_traceback(self):
        with MasterSlaveEvaluator(
            _failing_fitness, n_workers=2, dispatch="chunked"
        ) as chunked:
            with pytest.raises(RuntimeError, match="boom"):
                chunked.evaluate_batch([(1, 2)])

    def test_batches_after_a_worker_error_return_correct_values(self):
        # a failed batch must not leave stale messages (results *or* errors)
        # that a later batch consumes: task ids are farm-unique and stale
        # ids are discarded.  Markers 90-93 error on whichever slaves own
        # them, so the aborted batch leaves stale error tuples behind too.
        with MasterSlaveEvaluator(
            _fail_on_marker_fitness, n_workers=2, dispatch="chunked",
            chunk_size=1, dedup=False, cache_size=0,
        ) as chunked:
            with pytest.raises(RuntimeError, match="marker"):
                chunked.evaluate_batch([(1,), (90,), (91,), (92,), (93,), (2,)])
            assert chunked.evaluate_batch([(5,), (6,), (7,)]) == [6.0, 7.0, 8.0]

    def test_affinity_routing_is_deterministic(self):
        from repro.parallel.farm import affinity_worker

        key = (3, 7, 11)
        assert affinity_worker(key, 4) == affinity_worker(key, 4)
        assert 0 <= affinity_worker(key, 4) < 4


class TestStealDispatch:
    """The work-stealing engine: same values and counters, streamed completions."""

    def _batch(self, n=24):
        return [(i, i + 1, (i * 7) % 50 + 60) for i in range(n)]

    def test_steal_matches_affinity_values_and_counters(self):
        batch = self._batch()
        with MasterSlaveEvaluator(
            _product_fitness, n_workers=3, dispatch="chunked",
            dedup=False, cache_size=0,
        ) as affinity:
            expected = affinity.evaluate_batch(batch)
            counters = affinity.stats.counters()
        with MasterSlaveEvaluator(
            _product_fitness, n_workers=3, dispatch="chunked", steal=True,
            chunk_size=2, dedup=False, cache_size=0,
        ) as stealing:
            assert stealing.steal
            assert stealing.evaluate_batch(batch) == pytest.approx(expected)
            assert stealing.stats.counters() == counters

    def test_steal_requires_chunked_dispatch(self):
        with pytest.raises(ValueError, match="chunked"):
            MasterSlaveEvaluator(_product_fitness, n_workers=2, steal=True,
                                 dispatch="individual")
        with pytest.raises(ValueError, match="max_inflight"):
            from repro.parallel.farm import ChunkedWorkerFarm

            ChunkedWorkerFarm(lambda: _product_fitness, 2, max_inflight=0)

    def test_ticket_streaming_out_of_order_collect(self):
        from repro.parallel.farm import ChunkedWorkerFarm

        class Factory:
            def __call__(self):
                return _product_fitness

        with ChunkedWorkerFarm(Factory(), 2, steal=True, chunk_size=1) as farm:
            batches = [self._batch(6), self._batch(10)[6:], [(1, 2), (3, 4)]]
            tickets = [farm.submit(batch) for batch in batches]
            # collect in reverse submission order: earlier tickets' results
            # arrive meanwhile and are folded into their own state
            for ticket, batch in list(zip(tickets, batches))[::-1]:
                values, stats = farm.collect(ticket)
                assert values == [_product_fitness(snps) for snps in
                                  [tuple(sorted(b)) for b in batch]]
                assert stats.n_requests == len(batch)
            with pytest.raises(KeyError):
                farm.collect(tickets[0])  # already collected

    def test_as_completed_streams_every_ticket(self):
        from repro.parallel.farm import ChunkedWorkerFarm

        class Factory:
            def __call__(self):
                return _product_fitness

        with ChunkedWorkerFarm(Factory(), 2, steal=True, chunk_size=2) as farm:
            batches = {farm.submit(self._batch(8)): 8, farm.submit(self._batch(5)): 5}
            seen = {}
            for ticket, values, stats in farm.as_completed(list(batches)):
                seen[ticket] = len(values)
                # the second batch overlaps the first, so depending on which
                # slave serves a stolen chunk it may be answered entirely from
                # slave caches; only the request total is timing-invariant
                assert stats.n_evaluations + stats.n_cache_hits == len(values)
            assert seen == batches

    def test_concurrent_collects_from_different_threads_both_progress(self):
        """Two threads collecting different tickets must not serialise: the
        blocking outbox wait is taken by one drainer at a time while the
        other waits on the condition, and both tickets complete."""
        import threading

        from repro.parallel.farm import ChunkedWorkerFarm

        class Factory:
            def __call__(self):
                return _product_fitness

        with ChunkedWorkerFarm(Factory(), 2, steal=True, chunk_size=1) as farm:
            first = farm.submit(self._batch(12))
            second = farm.submit(self._batch(20)[12:])
            collected = {}

            def collect(ticket):
                collected[ticket] = farm.collect(ticket)

            threads = [
                threading.Thread(target=collect, args=(t,)) for t in (first, second)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=30)
            assert not any(t.is_alive() for t in threads)
            assert set(collected) == {first, second}
            assert len(collected[first][0]) == 12
            assert len(collected[second][0]) == 8

    def test_worker_error_under_steal_only_fails_its_ticket(self):
        from repro.parallel.farm import ChunkedWorkerFarm

        class Factory:
            def __call__(self):
                return _fail_on_marker_fitness

        with ChunkedWorkerFarm(Factory(), 2, steal=True, chunk_size=1) as farm:
            good = farm.submit([(1,), (2,), (3,)])
            bad = farm.submit([(4,), (90,), (5,)])
            with pytest.raises(RuntimeError, match="marker"):
                farm.collect(bad)
            values, _stats = farm.collect(good)
            assert values == [2.0, 3.0, 4.0]
            # the farm stays usable after the failed ticket
            values, _stats = farm.evaluate([(6,), (7,)])
            assert values == [7.0, 8.0]

    def test_steal_with_worker_caches_keeps_exact_accounting(self):
        # repeats travel to the slaves; whichever slave answers (owner or
        # thief), the merged counters must balance requests exactly
        with MasterSlaveEvaluator(
            _product_fitness, n_workers=2, dispatch="chunked", steal=True,
            chunk_size=1, dedup=False, cache_size=0,
        ) as stealing:
            stealing.evaluate_batch([(1,), (2,), (3,), (4,)])
            stealing.evaluate_batch([(1,), (2,), (5,)])
            stats = stealing.stats
            assert stats.n_requests == 7
            assert stats.n_evaluations + stats.n_cache_hits == 7


class TestFarmCloseIdempotency:
    """Satellite regression: double context-manager exit and close/terminate
    interleavings must all be safe no-ops after the first."""

    def _farm(self):
        from repro.parallel.farm import ChunkedWorkerFarm

        class Factory:
            def __call__(self):
                return _product_fitness

        return ChunkedWorkerFarm(Factory(), 2)

    def test_double_context_manager_exit(self):
        farm = self._farm()
        with farm:
            with farm:
                farm.evaluate([(1, 2)])
        assert farm.closed
        farm.close()  # and an explicit third close

    def test_close_then_terminate_then_close(self):
        farm = self._farm()
        farm.close()
        farm.terminate()
        farm.close()
        assert farm.closed

    def test_terminate_then_close(self):
        farm = self._farm()
        farm.terminate()
        farm.close()
        assert farm.closed

    def test_closed_farm_rejects_submit_and_evaluate(self):
        farm = self._farm()
        farm.close()
        with pytest.raises(RuntimeError):
            farm.submit([(1,)])
        with pytest.raises(RuntimeError):
            farm.evaluate([(1,)])
