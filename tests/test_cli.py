"""Tests of the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_known_commands_parse(self):
        parser = build_parser()
        assert parser.parse_args(["table1"]).command == "table1"
        args = parser.parse_args(["simulate", "outdir", "--n-snps", "10"])
        assert args.command == "simulate" and args.n_snps == 10
        args = parser.parse_args(["run", "--population-size", "40", "--workers", "2"])
        assert args.population_size == 40 and args.workers == 2

    def test_experiment_commands_parse(self):
        parser = build_parser()
        assert parser.parse_args(["robustness", "--runs", "3"]).runs == 3
        assert parser.parse_args(["objectives", "--per-size", "10"]).per_size == 10
        assert parser.parse_args(["ablation", "--runs", "2"]).runs == 2
        assert parser.parse_args(["table2", "--quick"]).quick is True
        assert parser.parse_args(["landscape", "--panel-size", "12"]).panel_size == 12
        assert parser.parse_args(["evaluate", "dir", "1", "2", "--statistic", "lrt"]
                                 ).statistic == "lrt"

    def test_backend_flags_parse(self):
        parser = build_parser()
        args = parser.parse_args(["run", "--backend", "process-shm", "--chunk-size", "8"])
        assert args.backend == "process-shm" and args.chunk_size == 8
        args = parser.parse_args(["speedup", "--measured", "--backend", "threads",
                                  "--chunk-size", "4"])
        assert args.backend == "threads" and args.chunk_size == 4
        with pytest.raises(SystemExit):
            parser.parse_args(["run", "--backend", "carrier-pigeon"])


class TestCommands:
    def test_table1_command(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "18,009,460" in out

    def test_simulate_then_evaluate_and_run(self, tmp_path, capsys):
        study_dir = tmp_path / "study"
        assert main([
            "simulate", str(study_dir), "--n-snps", "12",
            "--n-affected", "15", "--n-unaffected", "15", "--seed", "3",
        ]) == 0
        out = capsys.readouterr().out
        assert "planted causal haplotype" in out
        assert (study_dir / "genotypes.csv").exists()
        assert (study_dir / "frequencies.csv").exists()
        assert (study_dir / "ld.csv").exists()

        assert main(["evaluate", str(study_dir), "2", "5", "8"]) == 0
        out = capsys.readouterr().out
        assert "fitness (T1)" in out
        assert "T4:" in out

        assert main([
            "run", str(study_dir), "--population-size", "15", "--max-size", "3",
            "--stagnation", "3", "--max-generations", "5", "--seed", "1",
        ]) == 0
        out = capsys.readouterr().out
        assert "size 2" in out and "size 3" in out
        assert "evaluations" in out
        # the reuse rate (requests vs evaluations) is surfaced in the summary
        assert "evaluation backend: serial" in out
        assert "requests" in out

    def test_run_with_explicit_backend(self, tmp_path, capsys):
        study_dir = tmp_path / "study"
        main(["simulate", str(study_dir), "--n-snps", "10",
              "--n-affected", "12", "--n-unaffected", "12", "--seed", "9"])
        capsys.readouterr()
        assert main([
            "run", str(study_dir), "--backend", "threads", "--workers", "2",
            "--population-size", "10", "--max-size", "3",
            "--stagnation", "2", "--max-generations", "3", "--seed", "1",
        ]) == 0
        out = capsys.readouterr().out
        assert "evaluation backend: threads" in out

    @pytest.mark.slow
    def test_run_with_process_shm_backend(self, tmp_path, capsys):
        study_dir = tmp_path / "study"
        main(["simulate", str(study_dir), "--n-snps", "10",
              "--n-affected", "12", "--n-unaffected", "12", "--seed", "9"])
        capsys.readouterr()
        assert main([
            "run", str(study_dir), "--backend", "process-shm", "--workers", "2",
            "--population-size", "10", "--max-size", "3",
            "--stagnation", "2", "--max-generations", "3", "--seed", "1",
        ]) == 0
        out = capsys.readouterr().out
        assert "evaluation backend: process-shm" in out

    def test_speedup_command_simulated_only(self, capsys):
        assert main(["speedup"]) == 0
        assert "Simulated PVM speedup" in capsys.readouterr().out

    def test_evaluate_with_significance(self, tmp_path, capsys):
        study_dir = tmp_path / "study"
        main(["simulate", str(study_dir), "--n-snps", "10",
              "--n-affected", "12", "--n-unaffected", "12", "--seed", "4"])
        capsys.readouterr()
        assert main(["evaluate", str(study_dir), "1", "2", "--significance"]) == 0
        assert "Monte-Carlo" in capsys.readouterr().out
