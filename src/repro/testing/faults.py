"""Fault injection for the self-healing execution core.

The recovery machinery of :class:`~repro.parallel.farm.ChunkedWorkerFarm`
(death detection, chunk replay, respawn, hang reaping) only runs when slaves
actually fail, so its tests and benchmarks need failures on demand — in the
*slave process*, at a deterministic point in the evaluation stream, without
touching production code paths.

:class:`ChaosPolicy` describes one fault (die hard, hang, or raise, after the
N-th evaluation or on a poison haplotype); :func:`chaos_wrapper` turns it
into a ``worker_wrapper`` for :func:`repro.runtime.backends.create_evaluator`
/ :class:`~repro.runtime.service.RunScheduler`, and :class:`ChaosFactory`
wraps an evaluator factory directly for farm-level tests.  Everything is
picklable — the chaos ships to the slaves exactly like the real evaluator
factory does.

Faults fired *before* the fault point evaluate normally, so values produced
by a chaotic run are bit-identical to a fault-free one — which is precisely
the property the recovery tests assert.  With a ``token_path``, only the
first slave to claim the token file fires (``O_CREAT | O_EXCL`` — atomic
across processes), turning "every slave would die on call 3" into the
realistic "exactly one slave dies".

The *network* chaos layer mirrors the evaluation one for the service fabric:
:class:`ConnectionChaos` describes one transport fault (sever, delay or
black-hole, on the N-th message) and :class:`ChaosConnection` wraps a
``multiprocessing.connection`` endpoint to fire it deterministically — so a
daemon losing its client mid-scan, a client whose replies arrive late, or a
worker host that goes silent are all driven by a counted message, not luck.
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass

__all__ = [
    "ChaosPolicy",
    "ChaosError",
    "ChaosFactory",
    "chaos_wrapper",
    "ConnectionChaos",
    "ChaosConnection",
]


class ChaosError(RuntimeError):
    """The injected in-band failure (travels the worker-error path)."""


@dataclass(frozen=True)
class ChaosPolicy:
    """One injected fault in a slave's evaluation stream.

    Exactly one trigger must be set:

    * ``kill_after=N`` — the N-th evaluation hard-kills the slave process
      (``os._exit(exit_code)``: no traceback, no queue flush — what a
      SIGKILLed or OOM-killed cluster node looks like to the master);
    * ``hang_after=N`` — the N-th evaluation sleeps ``hang_seconds`` (a
      wedged slave: alive but silent, detectable only via chunk deadlines);
    * ``raise_after=N`` — the N-th evaluation raises :class:`ChaosError`
      (an in-band evaluation error: travels the normal per-ticket error
      path, no recovery involved);
    * ``kill_on_key=(snp, ...)`` — evaluating exactly this haplotype kills
      the slave.  A *poison chunk*: replaying it kills the replayer too,
      which is how retry-exhaustion is exercised.

    ``token_path`` (optional) arms the fault only in the one process that
    wins the token file; everyone else evaluates normally forever.
    """

    kill_after: int | None = None
    hang_after: int | None = None
    raise_after: int | None = None
    kill_on_key: tuple[int, ...] | None = None
    exit_code: int = 23
    hang_seconds: float = 3600.0
    token_path: str | None = None

    def __post_init__(self) -> None:
        triggers = [
            self.kill_after is not None,
            self.hang_after is not None,
            self.raise_after is not None,
            self.kill_on_key is not None,
        ]
        if sum(triggers) != 1:
            raise ValueError(
                "exactly one of kill_after, hang_after, raise_after or "
                "kill_on_key must be set"
            )
        for name in ("kill_after", "hang_after", "raise_after"):
            value = getattr(self, name)
            if value is not None and (
                not isinstance(value, int) or isinstance(value, bool) or value < 1
            ):
                raise ValueError(f"{name} must be a positive integer, got {value!r}")
        if self.kill_on_key is not None:
            object.__setattr__(
                self, "kill_on_key", tuple(sorted(int(s) for s in self.kill_on_key))
            )

    def claim_token(self) -> bool:
        """Atomically claim the fault token (True = this process faults).

        Without a ``token_path`` every process is armed.
        """
        if self.token_path is None:
            return True
        try:
            fd = os.open(self.token_path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            return False
        os.close(fd)
        return True


class _ChaosFitness:
    """Wraps a slave's fitness callable, firing the policy's fault in stream.

    Deliberately does *not* expose ``evaluate_many``: the scalar loop keeps
    the evaluation count exact (so ``kill_after`` means what it says) and the
    values stay bit-identical — the stacked path computes the same numbers,
    only faster.
    """

    def __init__(self, fitness, policy: ChaosPolicy) -> None:
        self._fitness = fitness
        self._policy = policy
        self._armed = policy.claim_token()
        self._calls = 0

    def __call__(self, snps) -> float:
        policy = self._policy
        if self._armed:
            self._calls += 1
            if policy.kill_on_key is not None:
                if tuple(sorted(int(s) for s in snps)) == policy.kill_on_key:
                    os._exit(policy.exit_code)
            elif policy.kill_after is not None and self._calls == policy.kill_after:
                os._exit(policy.exit_code)
            elif policy.hang_after is not None and self._calls == policy.hang_after:
                time.sleep(policy.hang_seconds)
            elif policy.raise_after is not None and self._calls == policy.raise_after:
                raise ChaosError(
                    f"injected failure on evaluation {self._calls}"
                )
        return float(self._fitness(snps))


@dataclass(frozen=True)
class ChaosFactory:
    """Picklable evaluator factory wrapping another factory with a policy.

    Use directly as a :class:`~repro.parallel.farm.ChunkedWorkerFarm`
    factory; for the backend/scheduler layers prefer :func:`chaos_wrapper`.
    """

    factory: object
    policy: ChaosPolicy

    def __call__(self):
        return _ChaosFitness(self.factory(), self.policy)


@dataclass(frozen=True)
class _ChaosWrapper:
    """The picklable ``worker_wrapper`` :func:`chaos_wrapper` returns."""

    policy: ChaosPolicy

    def __call__(self, factory) -> ChaosFactory:
        return ChaosFactory(factory, self.policy)


def chaos_wrapper(policy: ChaosPolicy) -> _ChaosWrapper:
    """A ``worker_wrapper`` installing ``policy`` in every slave's evaluator.

    Pass to :func:`repro.runtime.backends.create_evaluator`,
    :class:`~repro.runtime.service.RunScheduler` or
    :class:`~repro.parallel.master_slave.MasterSlaveEvaluator` via their
    ``worker_wrapper`` parameter.
    """
    return _ChaosWrapper(policy)


# --------------------------------------------------------------------------- #
# network chaos: deterministic transport faults for the service fabric
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class ConnectionChaos:
    """One injected transport fault, fired on the N-th message (1-based).

    Exactly one trigger must be set:

    * ``sever_on_send=N`` — the N-th outbound message tears the connection
      (the peer sees EOF; the sender gets ``BrokenPipeError``), what a
      crashed process or a RST mid-stream looks like;
    * ``sever_on_recv=N`` — the connection tears just as the N-th inbound
      message would be delivered (``EOFError`` on ``recv``);
    * ``delay_on_recv=N`` — from the moment the N-th inbound message is
      first awaited, nothing is readable for ``delay_seconds`` (a slow or
      congested link: ``poll`` returns False until the delay elapses);
    * ``black_hole_on_recv=N`` — from the N-th inbound message on, nothing
      is ever readable again (``poll`` always False, ``recv`` blocks until
      the wrapper is closed), what a silently dropped route looks like.
    """

    sever_on_send: int | None = None
    sever_on_recv: int | None = None
    delay_on_recv: int | None = None
    black_hole_on_recv: int | None = None
    delay_seconds: float = 0.5

    def __post_init__(self) -> None:
        triggers = [
            self.sever_on_send,
            self.sever_on_recv,
            self.delay_on_recv,
            self.black_hole_on_recv,
        ]
        if sum(value is not None for value in triggers) != 1:
            raise ValueError(
                "exactly one of sever_on_send, sever_on_recv, delay_on_recv "
                "or black_hole_on_recv must be set"
            )
        for name in (
            "sever_on_send",
            "sever_on_recv",
            "delay_on_recv",
            "black_hole_on_recv",
        ):
            value = getattr(self, name)
            if value is not None and (
                not isinstance(value, int) or isinstance(value, bool) or value < 1
            ):
                raise ValueError(f"{name} must be a positive integer, got {value!r}")
        if self.delay_seconds < 0:
            raise ValueError(
                f"delay_seconds must be non-negative, got {self.delay_seconds!r}"
            )


class ChaosConnection:
    """A ``multiprocessing.connection`` endpoint with one scripted fault.

    Wraps the real connection and counts messages; the
    :class:`ConnectionChaos` trigger fires at its exact ordinal, every
    earlier message flows untouched — so a test (or bench) drives "the
    daemon died after window 3" or "the link went dark after the hello"
    deterministically.  Implements the ``send``/``recv``/``poll``/``close``
    surface the service clients and farms use, so it drops in anywhere a
    plain connection does (e.g. ``ScanClient(wrap_connection=...)``).
    """

    def __init__(self, conn, chaos: ConnectionChaos) -> None:
        self._conn = conn
        self._chaos = chaos
        self._n_sends = 0
        self._n_recvs = 0
        self._delay_until: float | None = None
        self._closed_event = threading.Event()

    # ------------------------------------------------------------------ #
    @property
    def n_sends(self) -> int:
        return self._n_sends

    @property
    def n_recvs(self) -> int:
        return self._n_recvs

    @property
    def closed(self) -> bool:
        return self._closed_event.is_set() or getattr(self._conn, "closed", False)

    def fileno(self) -> int:
        return self._conn.fileno()

    def close(self) -> None:
        self._closed_event.set()
        try:
            self._conn.close()
        except OSError:
            pass

    def _sever(self) -> None:
        """Tear the underlying transport mid-message."""
        self._closed_event.set()
        try:
            self._conn.close()
        except OSError:
            pass

    # ------------------------------------------------------------------ #
    def send(self, obj) -> None:
        chaos = self._chaos
        self._n_sends += 1
        if chaos.sever_on_send is not None and self._n_sends >= chaos.sever_on_send:
            self._sever()
            raise BrokenPipeError(
                f"chaos: connection severed on send #{self._n_sends}"
            )
        self._conn.send(obj)

    def _black_holed(self) -> bool:
        chaos = self._chaos
        return (
            chaos.black_hole_on_recv is not None
            and self._n_recvs + 1 >= chaos.black_hole_on_recv
        )

    def _delay_remaining(self) -> float:
        """Seconds the next inbound message is still scripted to be late."""
        chaos = self._chaos
        if chaos.delay_on_recv is None or self._n_recvs + 1 != chaos.delay_on_recv:
            return 0.0
        if self._delay_until is None:
            # the delay clock starts the first time the message is awaited
            self._delay_until = time.monotonic() + chaos.delay_seconds
        return max(0.0, self._delay_until - time.monotonic())

    def poll(self, timeout: float = 0.0) -> bool:
        if self._closed_event.is_set():
            return self._conn.poll(0)
        if self._black_holed():
            self._closed_event.wait(timeout=max(0.0, timeout or 0.0))
            return False
        remaining = self._delay_remaining()
        if remaining > 0.0:
            budget = max(0.0, timeout or 0.0)
            if budget <= remaining:
                self._closed_event.wait(timeout=budget)
                return False
            self._closed_event.wait(timeout=remaining)
            return self._conn.poll(budget - remaining)
        return self._conn.poll(timeout)

    def recv(self):
        chaos = self._chaos
        if self._black_holed():
            # nothing will ever arrive; block until the wrapper is closed
            self._closed_event.wait()
            raise EOFError("chaos: connection black-holed")
        remaining = self._delay_remaining()
        if remaining > 0.0:
            self._closed_event.wait(timeout=remaining)
        if chaos.sever_on_recv is not None and self._n_recvs + 1 >= chaos.sever_on_recv:
            self._sever()
            raise EOFError(
                f"chaos: connection severed on recv #{self._n_recvs + 1}"
            )
        message = self._conn.recv()
        self._n_recvs += 1
        return message

    def __enter__(self) -> "ChaosConnection":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
