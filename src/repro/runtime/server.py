"""Scan-as-a-service: the warm-farm daemon behind ``repro serve``.

Every ``run``/``scan`` CLI invocation pays the full substrate spin-up — farm
fork, shared-memory panel registration, cold dedup/LRU stacks — before the
first window evaluates.  :class:`ScanServer` pays it **once**: it wraps one
persistent :class:`~repro.runtime.service.RunScheduler` (one warm farm, one
panel, one shared cache population) behind an authenticated
``multiprocessing.connection`` socket (the exact transport/authkey machinery
of :mod:`repro.runtime.remote`) and serves scan/run requests from many
concurrent clients, streaming per-window completions back as they finish.

Three layers sit between the socket and the scheduler:

* :class:`WindowResultCache` — a bytes-budgeted LRU of *window results*
  keyed on (panel fingerprint, global SNP window, GAConfig digest, seed,
  statistic, n_runs).  A re-submitted or overlapping scan replays cached
  windows bit-identically (the cached payload is the exact
  :func:`~repro.scan.report.window_result_to_json` round-trip the checkpoint
  journal already relies on) without touching the farm; replays are counted
  in ``EvaluationStats.n_result_cache_hits`` and surfaced by
  :func:`~repro.runtime.service.backend_summary_line`.
* :class:`AdmissionController` — cost-aware admission and backpressure
  generalising the scan runner's ``max_pending``: every request is priced
  via the calibrated :class:`~repro.parallel.pvm.EvaluationCostModel`, a
  bounded queue of waiting requests feeds a bounded number of active slots,
  per-client in-flight caps stop one tenant from monopolising the farm, and
  :class:`AdmissionPolicy` decides whether over-budget work queues or is
  rejected outright.
* :class:`TenantMetrics` — per-client request/evaluation/cache-hit/replay
  counters scoped through ``EvaluationStats.since()`` deltas (each job's
  :class:`~repro.runtime.service.RunResult` stats cover exactly its own
  work), queryable over the socket and printed by ``repro serve --status``.

Determinism contract: a scan served through the daemon — cache cold or warm
— fingerprint-matches the in-process scan; replayed windows are bit-identical
because JSON floats round-trip exactly and the report fingerprint excludes
timings.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import signal
import socket
import threading
import time
from collections import OrderedDict
from contextlib import contextmanager
from dataclasses import dataclass
from multiprocessing.connection import Listener
from typing import Sequence

from ..core.config import GAConfig
from ..genetics.dataset import GenotypeDataset, LocusWindow
from ..parallel.base import BaseBatchEvaluator, EvaluationStats
from ..parallel.farm import FarmRecoveryPolicy
from ..parallel.pvm import EvaluationCostModel
from ..scan.checkpoint import CheckpointMismatchError, ScanJournal, checkpoint_meta
from ..scan.planner import plan_scan
from ..scan.report import window_result_from_json, window_result_to_json
from ..scan.runner import _window_result
from .backends import DEFAULT_BACKEND
from .remote import default_authkey, parse_host
from .service import (
    RunRequest,
    RunScheduler,
    backend_summary_line,
    estimate_request_cost,
)
from .spec import (
    ClientHello,
    HealthProbe,
    RunEnvelope,
    ScanEnvelope,
    ShutdownCommand,
    StatusProbe,
)

__all__ = [
    "ScanServer",
    "WindowResultCache",
    "AdmissionPolicy",
    "AdmissionController",
    "AdmissionRejected",
    "AdmissionCancelled",
    "TenantMetrics",
    "config_digest",
    "DEFAULT_CACHE_BYTES",
]

#: Default bytes budget of the cross-request window-result cache (64 MiB —
#: a window payload is a few hundred bytes, so this holds ~10^5 windows).
DEFAULT_CACHE_BYTES = 64 << 20


def config_digest(config: GAConfig | None) -> str:
    """Stable digest of a GA configuration (part of the result-cache key).

    Sorted-key JSON of the dataclass fields, so two configs digest equal
    exactly when every parameter that shapes the search is equal.
    """
    payload = json.dumps(
        dataclasses.asdict(config or GAConfig()), sort_keys=True, default=str
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


def _stats_dict(stats: EvaluationStats) -> dict:
    """The stats counters as a JSON/pickle-friendly plain dict."""
    return {k: v for k, v in stats.__dict__.items() if not k.startswith("_")}


class WindowResultCache:
    """A bytes-budgeted LRU of per-window scan results (thread-safe).

    Values are :func:`~repro.scan.report.window_result_to_json` payloads —
    the exact unit the checkpoint journal persists, so a cache replay is the
    same bit-identical round trip a ``--resume`` is.  ``max_bytes=0``
    disables the cache entirely.
    """

    def __init__(self, max_bytes: int = DEFAULT_CACHE_BYTES) -> None:
        if max_bytes < 0:
            raise ValueError(f"max_bytes must be non-negative, got {max_bytes!r}")
        self._max_bytes = int(max_bytes)
        self._lock = threading.Lock()
        self._entries: OrderedDict[tuple, tuple[dict, int]] = OrderedDict()
        self._bytes = 0
        self.n_hits = 0
        self.n_misses = 0
        self.n_insertions = 0
        self.n_evictions = 0

    @property
    def max_bytes(self) -> int:
        return self._max_bytes

    @property
    def n_entries(self) -> int:
        return len(self._entries)

    @property
    def bytes_used(self) -> int:
        return self._bytes

    def get(self, key: tuple) -> dict | None:
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.n_misses += 1
                return None
            self._entries.move_to_end(key)
            self.n_hits += 1
            return entry[0]

    def put(self, key: tuple, payload: dict) -> None:
        if self._max_bytes == 0:
            return
        size = len(json.dumps(payload))
        with self._lock:
            if key in self._entries:
                return  # two clients computed the same window concurrently
            if size > self._max_bytes:
                return
            self._entries[key] = (payload, size)
            self._bytes += size
            self.n_insertions += 1
            while self._bytes > self._max_bytes:
                _key, (_payload, evicted) = self._entries.popitem(last=False)
                self._bytes -= evicted
                self.n_evictions += 1

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "n_entries": len(self._entries),
                "bytes": self._bytes,
                "max_bytes": self._max_bytes,
                "n_hits": self.n_hits,
                "n_misses": self.n_misses,
                "n_insertions": self.n_insertions,
                "n_evictions": self.n_evictions,
            }


class AdmissionRejected(RuntimeError):
    """A request the admission policy refused (queue full, cap hit, over budget)."""

    def __init__(self, reason: str) -> None:
        super().__init__(reason)
        self.reason = reason


class AdmissionCancelled(RuntimeError):
    """A queued admission whose client disconnected before a slot freed up.

    The reservation (queue slot, in-flight count, cost) is rolled back, so
    abandoned requests stop consuming admission capacity — without this, a
    client that times out and hangs up would still get its scan *executed*
    when its turn came, burning farm time nobody is waiting for.
    """


@dataclass(frozen=True)
class AdmissionPolicy:
    """Cost-aware admission knobs of the scan service.

    Attributes
    ----------
    max_active:
        Requests executing on the scheduler concurrently; further admitted
        requests wait in the admission queue (the generalised ``max_pending``
        backpressure).
    max_queued:
        Bound on requests *waiting* for an active slot; a request arriving
        with every slot busy and the queue full is rejected.
    max_inflight_per_client:
        Cap on one client id's concurrent requests (queued + active).
    max_outstanding_cost_seconds:
        Optional budget on the summed :func:`estimate_request_cost` price of
        all admitted-but-unfinished work.  ``None`` disables cost gating.
    over_budget:
        What happens to a request that would exceed the cost budget:
        ``"queue"`` lets it wait its turn (the bounded queue is the
        backpressure), ``"reject"`` refuses it immediately.
    """

    max_active: int = 4
    max_queued: int = 16
    max_inflight_per_client: int = 2
    max_outstanding_cost_seconds: float | None = None
    over_budget: str = "queue"

    def __post_init__(self) -> None:
        for name in ("max_active", "max_queued", "max_inflight_per_client"):
            value = getattr(self, name)
            if not isinstance(value, int) or isinstance(value, bool) or value < 0:
                raise ValueError(f"{name} must be a non-negative integer, got {value!r}")
        if self.max_active < 1:
            raise ValueError("max_active must be at least 1")
        if self.max_inflight_per_client < 1:
            raise ValueError("max_inflight_per_client must be at least 1")
        if self.over_budget not in ("queue", "reject"):
            raise ValueError(
                f"over_budget must be 'queue' or 'reject', got {self.over_budget!r}"
            )

    def to_json(self) -> dict:
        return dataclasses.asdict(self)


@dataclass
class AdmissionTicket:
    """Proof of admission; must be released when the request finishes."""

    client_id: str
    cost: float
    wait_seconds: float = 0.0


class AdmissionController:
    """Enforces an :class:`AdmissionPolicy` across concurrent handler threads."""

    def __init__(self, policy: AdmissionPolicy | None = None) -> None:
        self._policy = policy or AdmissionPolicy()
        self._cond = threading.Condition()
        self._active = 0
        self._queued = 0
        self._outstanding_cost = 0.0
        self._inflight: dict[str, int] = {}
        self.n_admitted = 0
        self.n_rejected = 0
        self.n_cancelled = 0
        self.total_wait_seconds = 0.0
        self.rejections: dict[str, int] = {}

    @property
    def policy(self) -> AdmissionPolicy:
        return self._policy

    def _reject(self, reason: str) -> None:
        self.n_rejected += 1
        self.rejections[reason] = self.rejections.get(reason, 0) + 1
        raise AdmissionRejected(reason)

    def admit(
        self,
        client_id: str,
        cost: float,
        *,
        cancelled=None,
        poll_seconds: float = 0.05,
    ) -> AdmissionTicket:
        """Admit a request priced at ``cost`` seconds, blocking while queued.

        Raises :class:`AdmissionRejected` — without blocking — when the
        client's in-flight cap is hit, the wait queue is full, or the cost
        budget is exceeded under the ``reject`` policy.

        ``cancelled`` (optional, a zero-argument callable) is polled every
        ``poll_seconds`` while the request waits in the queue; when it
        returns True the reservation is rolled back and
        :class:`AdmissionCancelled` raised — the freed queue slot and
        in-flight count immediately benefit other waiters.
        """
        policy = self._policy
        cost = float(cost)
        start = time.perf_counter()
        with self._cond:
            if self._inflight.get(client_id, 0) >= policy.max_inflight_per_client:
                self._reject(
                    f"client {client_id!r} already has "
                    f"{policy.max_inflight_per_client} request(s) in flight"
                )
            if self._active >= policy.max_active and self._queued >= policy.max_queued:
                self._reject("admission queue full")
            budget = policy.max_outstanding_cost_seconds
            if (
                budget is not None
                and self._outstanding_cost > 0
                and self._outstanding_cost + cost > budget
                and policy.over_budget == "reject"
            ):
                self._reject(
                    f"estimated cost {cost:.3f}s would exceed the outstanding "
                    f"budget ({self._outstanding_cost:.3f}s of {budget:.3f}s used)"
                )
            # admitted: reserve, then wait for an active slot
            self._inflight[client_id] = self._inflight.get(client_id, 0) + 1
            self._outstanding_cost += cost
            self._queued += 1
            while self._active >= policy.max_active:
                if cancelled is not None and cancelled():
                    # roll the reservation back: the freed queue slot /
                    # in-flight count / cost budget go to live waiters
                    self._queued -= 1
                    self._outstanding_cost = max(0.0, self._outstanding_cost - cost)
                    remaining = self._inflight.get(client_id, 1) - 1
                    if remaining > 0:
                        self._inflight[client_id] = remaining
                    else:
                        self._inflight.pop(client_id, None)
                    self.n_cancelled += 1
                    self._cond.notify_all()
                    raise AdmissionCancelled(
                        f"client {client_id!r} disconnected while queued"
                    )
                self._cond.wait(
                    timeout=poll_seconds if cancelled is not None else None
                )
            self._queued -= 1
            self._active += 1
            self.n_admitted += 1
            wait = time.perf_counter() - start
            self.total_wait_seconds += wait
            return AdmissionTicket(client_id=client_id, cost=cost, wait_seconds=wait)

    def release(self, ticket: AdmissionTicket) -> None:
        with self._cond:
            self._active -= 1
            self._outstanding_cost = max(0.0, self._outstanding_cost - ticket.cost)
            remaining = self._inflight.get(ticket.client_id, 1) - 1
            if remaining > 0:
                self._inflight[ticket.client_id] = remaining
            else:
                self._inflight.pop(ticket.client_id, None)
            self._cond.notify_all()

    def snapshot(self) -> dict:
        with self._cond:
            return {
                "n_active": self._active,
                "n_queued": self._queued,
                "outstanding_cost_seconds": self._outstanding_cost,
                "n_admitted": self.n_admitted,
                "n_rejected": self.n_rejected,
                "n_cancelled": self.n_cancelled,
                "rejections": dict(self.rejections),
                "total_wait_seconds": self.total_wait_seconds,
                "policy": self._policy.to_json(),
            }


class TenantMetrics:
    """Per-client (tenant) accounting, keyed by the hello's ``client_id``."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._tenants: dict[str, dict] = {}

    def _entry(self, client_id: str) -> dict:
        entry = self._tenants.get(client_id)
        if entry is None:
            entry = {
                "n_connections": 0,
                "n_requests": 0,
                "n_scans": 0,
                "n_runs": 0,
                "n_windows": 0,
                "n_result_cache_hits": 0,
                "n_rejected": 0,
                "admission_wait_seconds": 0.0,
                "stats": EvaluationStats(),
            }
            self._tenants[client_id] = entry
        return entry

    def record_connection(self, client_id: str) -> None:
        with self._lock:
            self._entry(client_id)["n_connections"] += 1

    def record_scan(
        self,
        client_id: str,
        *,
        n_windows: int,
        n_cached: int,
        stats: EvaluationStats,
        wait_seconds: float,
    ) -> None:
        with self._lock:
            entry = self._entry(client_id)
            entry["n_requests"] += 1
            entry["n_scans"] += 1
            entry["n_windows"] += n_windows
            entry["n_result_cache_hits"] += n_cached
            entry["admission_wait_seconds"] += wait_seconds
            entry["stats"].merge(stats)

    def record_run(
        self, client_id: str, stats: EvaluationStats, *, wait_seconds: float
    ) -> None:
        with self._lock:
            entry = self._entry(client_id)
            entry["n_requests"] += 1
            entry["n_runs"] += 1
            entry["admission_wait_seconds"] += wait_seconds
            entry["stats"].merge(stats)

    def record_rejection(self, client_id: str) -> None:
        with self._lock:
            self._entry(client_id)["n_rejected"] += 1

    def snapshot(self) -> dict:
        with self._lock:
            return {
                client_id: {
                    **{k: v for k, v in entry.items() if k != "stats"},
                    "stats": _stats_dict(entry["stats"]),
                }
                for client_id, entry in self._tenants.items()
            }


class ScanServer:
    """The warm-farm scan service: one persistent scheduler, many clients.

    Construction builds the scheduler (and with it the worker farm / shm
    panel) immediately; :meth:`start` binds the socket and accepts
    connections on a background thread, :meth:`serve_forever` additionally
    blocks the calling thread until shutdown (installing SIGTERM/SIGINT
    handlers when possible), and :meth:`close` drains in-flight requests and
    releases the substrate.

    One server is one evaluator recipe: requests whose ``statistic`` differs
    from the server's are answered with an error, not a second farm.
    """

    def __init__(
        self,
        dataset: GenotypeDataset,
        *,
        statistic: str = "t1",
        backend: str = DEFAULT_BACKEND,
        n_workers: int | None = None,
        chunk_size: int | None = None,
        dedup: bool = True,
        cache_size: int | None = BaseBatchEvaluator.DEFAULT_CACHE_SIZE,
        worker_cache_size: int | None = BaseBatchEvaluator.DEFAULT_CACHE_SIZE,
        cost_model: EvaluationCostModel | None = None,
        recovery: FarmRecoveryPolicy | None = None,
        packed: bool = False,
        hosts: Sequence[str] | None = None,
        steal_mode: str = "master",
        cache_bytes: int = DEFAULT_CACHE_BYTES,
        admission: AdmissionPolicy | None = None,
        authkey: bytes | None = None,
        journal_dir: str | None = None,
    ) -> None:
        self._scheduler = RunScheduler(
            dataset,
            statistic=statistic,
            backend=backend,
            n_workers=n_workers,
            chunk_size=chunk_size,
            dedup=dedup,
            cache_size=cache_size,
            worker_cache_size=worker_cache_size,
            cost_model=cost_model,
            recovery=recovery,
            packed=packed,
            hosts=hosts,
            steal_mode=steal_mode,
        )
        self._statistic = self._scheduler.spec.statistic
        # every request is priced, model or not: an uncalibrated default
        # still ranks big windows above clamped ones, which is all the
        # admission budget needs
        self._cost_model = cost_model or EvaluationCostModel()
        self._cache = WindowResultCache(cache_bytes)
        self._admission = AdmissionController(admission)
        self._tenants = TenantMetrics()
        self._authkey = authkey or default_authkey()
        self._panel_fingerprint = self._scheduler.dataset.fingerprint()
        # crash recovery: with a journal_dir every in-flight scan is journaled
        # through ScanJournal (one file per scan identity); a restarted daemon
        # replays completed windows from disk and recomputes only the rest
        self._journal_dir = None if journal_dir is None else str(journal_dir)
        if self._journal_dir is not None:
            os.makedirs(self._journal_dir, exist_ok=True)
        self._journal_guard = threading.Lock()
        self._journal_locks: dict[str, threading.Lock] = {}
        self._n_recovered_windows = 0
        self._n_recovered_scans = 0
        self._started_at = time.monotonic()
        self._listener: Listener | None = None
        self._address: tuple[str, int] | None = None
        self._accept_thread: threading.Thread | None = None
        self._handlers: list[threading.Thread] = []
        self._handler_lock = threading.Lock()
        self._stop = threading.Event()
        self._closed = False

    # ------------------------------------------------------------------ #
    @property
    def scheduler(self) -> RunScheduler:
        return self._scheduler

    @property
    def statistic(self) -> str:
        return self._statistic

    @property
    def result_cache(self) -> WindowResultCache:
        return self._cache

    @property
    def admission(self) -> AdmissionController:
        return self._admission

    @property
    def address(self) -> tuple[str, int]:
        if self._address is None:
            raise RuntimeError("the server has not been started")
        return self._address

    @property
    def host(self) -> str:
        """The resolved ``"host:port"`` spec clients connect to."""
        address = self.address
        return f"{address[0]}:{address[1]}"

    # ------------------------------------------------------------------ #
    def start(self, bind: tuple[str, int] | str = ("127.0.0.1", 0)) -> tuple[str, int]:
        """Bind the socket and accept connections on a background thread.

        Returns the resolved listen address (port ``0`` binds ephemerally).
        """
        if self._closed:
            raise RuntimeError("the server has been closed")
        if self._listener is not None:
            raise RuntimeError("the server is already listening")
        if isinstance(bind, str):
            bind = parse_host(bind)
        self._listener = Listener(tuple(bind), authkey=self._authkey)
        self._address = tuple(self._listener.address)
        self._accept_thread = threading.Thread(
            target=self._accept_loop, daemon=True, name="scan-serve-accept"
        )
        self._accept_thread.start()
        return self._address

    def wait(self, *, install_signal_handlers: bool = True) -> None:
        """Block until shutdown is requested (signal, command, or another thread)."""
        previous = (
            self._install_signal_handlers() if install_signal_handlers else {}
        )
        try:
            self._stop.wait()
        finally:
            for signum, handler in previous.items():
                signal.signal(signum, handler)

    def serve_forever(
        self, bind: tuple[str, int] | str = ("127.0.0.1", 0), *, _ready=None
    ) -> None:
        """``start`` + ``wait`` + ``close``: the blocking daemon entry point.

        ``_ready`` (a pipe end) receives the resolved address once listening
        — the same handshake :func:`repro.runtime.remote.serve` uses for
        ephemeral ports.
        """
        address = self.start(bind)
        if _ready is not None:
            _ready.send(address)
            _ready.close()
        try:
            self.wait()
        finally:
            self.close()

    def _install_signal_handlers(self) -> dict:
        """SIGTERM/SIGINT → drain and exit cleanly (main thread only)."""
        if threading.current_thread() is not threading.main_thread():
            return {}

        def handler(signum, frame):  # pragma: no cover - signal delivery
            self.request_shutdown()

        previous = {}
        for signum in (signal.SIGTERM, signal.SIGINT):
            previous[signum] = signal.signal(signum, handler)
        return previous

    @contextmanager
    def signal_handlers(self):
        """SIGTERM/SIGINT → drain, for the enclosed block (then restored).

        Lets a daemon announce readiness strictly *after* the handlers are
        live, so a signal racing the banner still drains cleanly.
        """
        previous = self._install_signal_handlers()
        try:
            yield self
        finally:
            for signum, handler in previous.items():
                signal.signal(signum, handler)

    def request_shutdown(self) -> None:
        """Stop accepting; idle connections close, in-flight requests drain."""
        self._stop.set()
        listener = self._listener
        if listener is not None:
            # A thread blocked in accept() pins the listening socket open
            # (close() neither wakes it nor frees the port), so poke it with
            # a throwaway connection: the accept thread wakes, observes the
            # stop flag and exits, and only then does close() take effect.
            try:
                with socket.create_connection(self._address, timeout=1.0):
                    pass
            except OSError:
                pass  # nothing blocked in accept
            try:
                listener.close()
            except OSError:  # pragma: no cover - already closed
                pass

    def close(self, *, drain: bool = True, timeout: float = 30.0) -> None:
        """Shut down: drain handler threads, release the scheduler; idempotent."""
        if self._closed:
            return
        self.request_shutdown()
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=5.0)
        if drain:
            deadline = time.monotonic() + timeout
            with self._handler_lock:
                handlers = list(self._handlers)
            for thread in handlers:
                thread.join(timeout=max(0.0, deadline - time.monotonic()))
        self._closed = True
        self._scheduler.close()

    def __enter__(self) -> "ScanServer":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    def _accept_loop(self) -> None:
        while not self._stop.is_set():
            try:
                conn = self._listener.accept()
            except OSError:
                return  # listener closed: shutting down
            except Exception:
                # failed authentication or a scanner poking the port
                continue
            if self._stop.is_set():  # the shutdown poke, not a client
                try:
                    conn.close()
                except OSError:  # pragma: no cover - already closed
                    pass
                return
            thread = threading.Thread(
                target=self._handle_connection, args=(conn,), daemon=True
            )
            with self._handler_lock:
                self._handlers = [t for t in self._handlers if t.is_alive()]
                self._handlers.append(thread)
            thread.start()

    @staticmethod
    def _send(conn, message) -> bool:
        try:
            conn.send(message)
        except (BrokenPipeError, ConnectionError, OSError, ValueError):
            return False
        return True

    def _handle_connection(self, conn) -> None:
        try:
            try:
                hello = conn.recv()
            except (EOFError, OSError):
                return
            if not isinstance(hello, ClientHello):
                self._send(
                    conn,
                    ("error", f"expected ClientHello, got {type(hello).__name__}"),
                )
                return
            client_id = str(hello.client_id)
            self._tenants.record_connection(client_id)
            if not self._send(
                conn,
                (
                    "ok",
                    {
                        "backend": self._scheduler.backend,
                        "statistic": self._statistic,
                        "n_snps": self._scheduler.dataset.n_snps,
                        "packed": self._scheduler.packed,
                        "panel_fingerprint": self._panel_fingerprint,
                    },
                ),
            ):
                return
            while not self._stop.is_set():
                # poll so a draining shutdown can close idle connections
                if not conn.poll(0.1):
                    continue
                try:
                    envelope = conn.recv()
                except (EOFError, OSError):
                    return
                if envelope is None:
                    return
                if isinstance(envelope, StatusProbe):
                    self._send(conn, ("status", self.status()))
                elif isinstance(envelope, HealthProbe):
                    self._send(conn, ("health", self.health()))
                elif isinstance(envelope, ShutdownCommand):
                    self._send(conn, ("ok", "shutting down"))
                    self.request_shutdown()
                    return
                elif isinstance(envelope, ScanEnvelope):
                    self._serve_scan(conn, client_id, envelope)
                elif isinstance(envelope, RunEnvelope):
                    self._serve_run(conn, client_id, envelope)
                else:
                    self._send(
                        conn,
                        ("error", f"unknown request {type(envelope).__name__}"),
                    )
        finally:
            try:
                conn.close()
            except OSError:  # pragma: no cover - already closed
                pass

    # ------------------------------------------------------------------ #
    def _window_key(self, window: LocusWindow, request: RunRequest) -> tuple:
        return (
            self._panel_fingerprint,
            int(window.start),
            int(window.stop),
            config_digest(request.config),
            int(request.seed if request.seed is not None else 0),
            self._statistic,
            int(request.n_runs),
        )

    @staticmethod
    def _client_attached(conn) -> bool:
        """Is the client still there?  While its request waits in the
        admission queue a well-behaved client sends nothing, so a *readable*
        connection means EOF (hangup) or a protocol violation — either way,
        nobody is waiting for this request anymore."""
        try:
            return not conn.closed and not conn.poll(0)
        except (OSError, ValueError):
            return False

    # ------------------------------------------------------------------ #
    # scan journaling (daemon crash recovery)
    # ------------------------------------------------------------------ #
    def _scan_journal_meta(self, plan, envelope: ScanEnvelope) -> dict:
        """The scan's identity header — exactly what :class:`ScanJournal`
        validates on resume, plus the GA-config digest (geometry and seeding
        alone do not pin the search parameters)."""
        meta = checkpoint_meta(
            plan,
            self._scheduler.dataset.n_snps,
            panel="packed" if self._scheduler.packed else "byte",
            panel_fingerprint=self._panel_fingerprint,
        )
        meta["config_digest"] = config_digest(envelope.config)
        return meta

    def _journal_path(self, meta: dict) -> str:
        digest = hashlib.sha256(
            json.dumps(meta, sort_keys=True).encode("utf-8")
        ).hexdigest()[:20]
        return os.path.join(self._journal_dir, f"scan-{digest}.jsonl")

    def _journal_lock(self, path: str) -> threading.Lock:
        """One lock per journal path: two identical concurrent scans must not
        interleave appends to the same file (the second waits, then replays
        the first's windows from the cache/journal)."""
        with self._journal_guard:
            lock = self._journal_locks.get(path)
            if lock is None:
                lock = threading.Lock()
                self._journal_locks[path] = lock
            return lock

    def _open_scan_journal(self, plan, envelope: ScanEnvelope):
        """Open (resuming) this scan's journal; returns
        ``(journal, restored_payloads_by_index)``."""
        meta = self._scan_journal_meta(plan, envelope)
        path = self._journal_path(meta)
        try:
            journal, completed = ScanJournal.open(path, meta, resume=True)
        except CheckpointMismatchError:
            # a digest collision or mid-file corruption: this journal cannot
            # be trusted, so recompute everything rather than refuse to scan
            os.remove(path)
            journal, completed = ScanJournal.open(path, meta, resume=False)
        restored = {
            index: window_result_to_json(result)
            for index, result in completed.items()
        }
        return journal, restored

    def _serve_scan(self, conn, client_id: str, envelope: ScanEnvelope) -> None:
        try:
            statistic = str(envelope.statistic).lower()
            if statistic != self._statistic:
                raise ValueError(
                    f"this service evaluates statistic {self._statistic!r}; "
                    f"got a scan for {statistic!r} (one daemon per recipe)"
                )
            plan = plan_scan(
                self._scheduler.dataset.n_snps,
                window_size=envelope.window_size,
                overlap=envelope.overlap,
                config=envelope.config,
                seed=envelope.seed,
                statistic=statistic,
                n_runs=envelope.n_runs,
            )
            jobs = list(plan.requests())
            cost = sum(
                estimate_request_cost(request, self._cost_model)
                for _window, request in jobs
            )
        except (TypeError, ValueError) as exc:
            self._send(conn, ("error", str(exc)))
            return
        try:
            ticket = self._admission.admit(
                client_id, cost, cancelled=lambda: not self._client_attached(conn)
            )
        except AdmissionCancelled:
            return  # the client hung up while queued; nothing to answer
        except AdmissionRejected as exc:
            self._tenants.record_rejection(client_id)
            self._send(conn, ("rejected", exc.reason))
            return
        start = time.perf_counter()
        journal = None
        journal_lock = None
        try:
            restored: dict[int, dict] = {}
            if self._journal_dir is not None:
                journal_lock = self._journal_lock(
                    self._journal_path(self._scan_journal_meta(plan, envelope))
                )
                journal_lock.acquire()
                journal, restored = self._open_scan_journal(plan, envelope)
            stats = EvaluationStats()
            n_cached = 0
            n_recovered = 0
            for window, request in jobs:
                key = self._window_key(window, request)
                payload = self._cache.get(key)
                cached = payload is not None
                if not cached and window.index in restored:
                    # a window the pre-crash daemon completed and journaled:
                    # replay it (and warm the cache) instead of recomputing
                    payload = restored[window.index]
                    cached = True
                    n_recovered += 1
                    self._cache.put(key, payload)
                if cached:
                    n_cached += 1
                    if journal is not None:
                        journal.append(window_result_from_json(payload))
                else:
                    run = self._scheduler.run(request)
                    result = _window_result(window, run)
                    payload = window_result_to_json(result)
                    # journal before acknowledging: any window the client
                    # (or the cache) has seen survives a daemon crash
                    if journal is not None:
                        journal.append(result)
                    self._cache.put(key, payload)
                    stats.merge(run.stats)
                if not self._send(conn, ("window", payload, cached)):
                    return  # client went away; stop burning farm time on it
            # the scan completed: its journal has served its purpose (warm
            # replays now come from the result cache), so retire the file
            # and keep journal_dir bounded to scans actually in flight
            if journal is not None:
                journal.close()
                try:
                    os.remove(journal.path)
                except OSError:  # pragma: no cover - already gone
                    pass
                journal = None
            if n_recovered:
                with self._journal_guard:
                    self._n_recovered_windows += n_recovered
                    self._n_recovered_scans += 1
            stats.n_result_cache_hits = n_cached
            self._tenants.record_scan(
                client_id,
                n_windows=len(jobs),
                n_cached=n_cached,
                stats=stats,
                wait_seconds=ticket.wait_seconds,
            )
            self._send(
                conn,
                (
                    "done",
                    {
                        "backend": self._scheduler.backend,
                        "jobs": self._scheduler.jobs,
                        "stats": _stats_dict(stats),
                        "n_windows": len(jobs),
                        "n_cached_windows": n_cached,
                        "n_recovered_windows": n_recovered,
                        "admission_wait_seconds": ticket.wait_seconds,
                        "elapsed_seconds": time.perf_counter() - start,
                    },
                ),
            )
        except Exception as exc:  # surface, don't kill the connection
            self._send(conn, ("error", f"{type(exc).__name__}: {exc}"))
        finally:
            if journal is not None:
                journal.close()
            if journal_lock is not None:
                journal_lock.release()
            self._admission.release(ticket)

    def _serve_run(self, conn, client_id: str, envelope: RunEnvelope) -> None:
        request = envelope.request
        if not isinstance(request, RunRequest):
            self._send(
                conn,
                ("error", f"RunEnvelope must carry a RunRequest, got "
                          f"{type(request).__name__}"),
            )
            return
        try:
            cost = estimate_request_cost(request, self._cost_model)
        except (TypeError, ValueError) as exc:
            self._send(conn, ("error", str(exc)))
            return
        try:
            ticket = self._admission.admit(
                client_id, cost, cancelled=lambda: not self._client_attached(conn)
            )
        except AdmissionCancelled:
            return  # the client hung up while queued; nothing to answer
        except AdmissionRejected as exc:
            self._tenants.record_rejection(client_id)
            self._send(conn, ("rejected", exc.reason))
            return
        try:
            result = self._scheduler.run(request)
            self._tenants.record_run(
                client_id, result.stats, wait_seconds=ticket.wait_seconds
            )
            self._send(conn, ("result", result))
        except Exception as exc:
            self._send(conn, ("error", f"{type(exc).__name__}: {exc}"))
        finally:
            self._admission.release(ticket)

    # ------------------------------------------------------------------ #
    def health(self) -> dict:
        """The daemon's liveness card: farm/worker-host health, admission
        queue depth, and the crash-recovery journal account — the cheap
        answer to a :class:`~repro.runtime.spec.HealthProbe`."""
        admission = self._admission.snapshot()
        with self._journal_guard:
            n_recovered_windows = self._n_recovered_windows
            n_recovered_scans = self._n_recovered_scans
        journal: dict = {
            "dir": self._journal_dir,
            "n_recovered_windows": n_recovered_windows,
            "n_recovered_scans": n_recovered_scans,
        }
        if self._journal_dir is not None:
            try:
                journal["n_inflight_scans"] = sum(
                    1
                    for name in os.listdir(self._journal_dir)
                    if name.startswith("scan-") and name.endswith(".jsonl")
                )
            except OSError:  # pragma: no cover - journal dir vanished
                journal["n_inflight_scans"] = None
        return {
            "status": "ok",
            "uptime_seconds": time.monotonic() - self._started_at,
            "backend": self._scheduler.backend,
            "statistic": self._statistic,
            "n_active_requests": admission["n_active"],
            "n_queued_requests": admission["n_queued"],
            "n_cancelled_admissions": admission["n_cancelled"],
            "farm": self._scheduler.farm_health(),
            "journal": journal,
        }

    def status(self) -> dict:
        """The daemon's full status dict (what ``repro serve --status`` prints)."""
        lifetime = self._scheduler.stats
        # surface the replay account on the scheduler-lifetime summary line:
        # the scheduler never sees replayed windows, the cache layer does
        lifetime.n_result_cache_hits += self._cache.n_hits
        return {
            "backend": self._scheduler.backend,
            "statistic": self._statistic,
            "n_snps": self._scheduler.dataset.n_snps,
            "packed": self._scheduler.packed,
            "panel_fingerprint": self._panel_fingerprint,
            "uptime_seconds": time.monotonic() - self._started_at,
            "n_completed_requests": self._scheduler.n_completed,
            "summary": backend_summary_line(self._scheduler.backend, lifetime),
            "stats": _stats_dict(lifetime),
            "result_cache": self._cache.snapshot(),
            "admission": self._admission.snapshot(),
            "tenants": self._tenants.snapshot(),
            "health": self.health(),
        }
