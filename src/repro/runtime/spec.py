"""Evaluator specifications: *how* to build an evaluator, not the evaluator.

The execution-backend layer never ships live
:class:`~repro.stats.evaluation.HaplotypeEvaluator` objects around by
default.  Instead it passes a small, picklable :class:`EvaluatorSpec`
(statistic + EM/CLUMP/caching parameters) together with a
:class:`DatasetHandle` describing *where the genotype data lives* — embedded
in the message (:class:`InMemoryDatasetHandle`) or in a shared-memory segment
(:class:`~repro.runtime.shm.SharedDatasetHandle`).  Every worker combines the
two once at start-up and keeps the resulting evaluator for its lifetime,
which is exactly the paper's "the slaves are initiated at the beginning and
access only once to the data".
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Protocol, runtime_checkable

from ..genetics.dataset import GenotypeDataset, as_packed_dataset
from ..stats.evaluation import HaplotypeEvaluator

if TYPE_CHECKING:  # pragma: no cover - typing only (service imports spec)
    from ..core.config import GAConfig
    from .service import RunRequest

__all__ = [
    "EvaluatorSpec",
    "DatasetHandle",
    "InMemoryDatasetHandle",
    "PackedDatasetHandle",
    "SpecEvaluatorFactory",
    "ClientHello",
    "ScanEnvelope",
    "RunEnvelope",
    "StatusProbe",
    "HealthProbe",
    "ShutdownCommand",
]


@runtime_checkable
class DatasetHandle(Protocol):
    """A picklable reference through which a worker obtains the dataset."""

    def load(self) -> GenotypeDataset:
        """Materialise (or attach to) the dataset; called once per worker."""
        ...


@dataclass(frozen=True)
class InMemoryDatasetHandle:
    """The trivial handle: the dataset itself travels with the message."""

    dataset: GenotypeDataset

    def load(self) -> GenotypeDataset:
        return self.dataset


@dataclass(frozen=True)
class PackedDatasetHandle:
    """An embedded handle that ships the 2-bit packed panel, not the bytes.

    Construction converts the dataset to its packed affected-first form
    (:func:`~repro.genetics.dataset.as_packed_dataset`), whose pickle carries
    only the packed panels (~4× smaller than the byte matrix) — the wire
    format of choice for the ``remote`` backend, where the dataset crosses a
    socket once per connection.  Workers evaluate on the packed substrate,
    which is bit-identical to the byte path.
    """

    dataset: GenotypeDataset

    def __post_init__(self) -> None:
        object.__setattr__(self, "dataset", as_packed_dataset(self.dataset))

    def load(self) -> GenotypeDataset:
        return self.dataset


@dataclass(frozen=True)
class EvaluatorSpec:
    """Declarative recipe for a :class:`~repro.stats.evaluation.HaplotypeEvaluator`.

    Field defaults mirror the evaluator's constructor defaults, so
    ``EvaluatorSpec()`` describes the seed pipeline's exact statistical
    behaviour.
    """

    statistic: str = "t1"
    em_max_iter: int = 200
    em_tol: float = 1e-8
    clump_min_expected: float = 5.0
    cache_size: int | None = 256
    warm_start: bool | str = False

    def build(self, dataset: GenotypeDataset) -> HaplotypeEvaluator:
        """Construct the evaluator this spec describes over ``dataset``."""
        return HaplotypeEvaluator(
            dataset,
            statistic=self.statistic,
            em_max_iter=self.em_max_iter,
            em_tol=self.em_tol,
            clump_min_expected=self.clump_min_expected,
            cache_size=self.cache_size,
            warm_start=self.warm_start,
        )

    @classmethod
    def from_evaluator(cls, evaluator: HaplotypeEvaluator) -> "EvaluatorSpec":
        """The spec an existing evaluator was built from."""
        return cls(
            statistic=evaluator.statistic,
            em_max_iter=evaluator.em_max_iter,
            em_tol=evaluator.em_tol,
            clump_min_expected=evaluator.clump_min_expected,
            cache_size=evaluator.cache_size,
            warm_start=evaluator.warm_start,
        )

    def with_statistic(self, statistic: str) -> "EvaluatorSpec":
        return replace(self, statistic=statistic)

    def normalized(self) -> "EvaluatorSpec":
        """The spec with its fields in the evaluator's normalised form.

        :class:`HaplotypeEvaluator` lower-cases the statistic and coerces the
        numeric parameters, so ``spec.build(...)`` followed by
        :meth:`from_evaluator` yields exactly ``spec.normalized()``.  Spec
        equality checks (e.g. the run scheduler's substrate validation) must
        compare normalised forms or ``statistic="T1"`` would not match
        ``statistic="t1"``.
        """
        return EvaluatorSpec(
            statistic=self.statistic.lower(),
            em_max_iter=int(self.em_max_iter),
            em_tol=float(self.em_tol),
            clump_min_expected=float(self.clump_min_expected),
            cache_size=self.cache_size,
            warm_start=self.warm_start,
        )


# --------------------------------------------------------------------------- #
# scan-service request envelopes (the wire protocol of runtime/server.py)
# --------------------------------------------------------------------------- #
# Envelopes are plain frozen dataclasses shipped as length-prefixed pickles
# over an authenticated ``multiprocessing.connection`` socket — the exact
# transport the remote worker hosts use.  They live here (not in server.py)
# because both endpoints import them and this module is the runtime layer's
# designated home for picklable message types.


@dataclass(frozen=True)
class ClientHello:
    """First message of every connection: who is asking.

    ``client_id`` scopes the per-tenant metrics and in-flight caps; clients
    sharing an id share a quota (and a metrics row).
    """

    client_id: str


@dataclass(frozen=True)
class ScanEnvelope:
    """One windowed-scan request; the server streams per-window completions.

    Geometry/seeding fields mirror :func:`repro.scan.planner.plan_scan`; the
    execution substrate (backend, workers, packing) is the *server's* and is
    deliberately absent.  ``statistic`` must match the daemon's substrate —
    one scheduler is one evaluator recipe.
    """

    window_size: int
    overlap: int = 0
    config: "GAConfig | None" = None
    seed: int = 0
    statistic: str = "t1"
    n_runs: int = 1


@dataclass(frozen=True)
class RunEnvelope:
    """One direct GA run: a :class:`~repro.runtime.service.RunRequest`.

    The request's own execution fields (backend, workers, hosts, ...) are
    ignored — the daemon's warm substrate executes it; only the evaluator
    spec/statistic must match the server's.
    """

    request: "RunRequest"


@dataclass(frozen=True)
class StatusProbe:
    """Ask for the daemon's status dict (uptime, cache, admission, tenants)."""


@dataclass(frozen=True)
class HealthProbe:
    """Ask for the daemon's liveness card: farm/worker-host health, admission
    queue depth, and the crash-recovery journal account.  Cheaper and more
    targeted than :class:`StatusProbe` — the monitoring heartbeat request."""


@dataclass(frozen=True)
class ShutdownCommand:
    """Ask the daemon to drain in-flight work and exit its serve loop."""

    drain: bool = True


@dataclass(frozen=True)
class SpecEvaluatorFactory:
    """Picklable worker-side factory: ``handle.load()`` + ``spec.build()``.

    Instances are shipped to worker processes (or shared with worker threads)
    and called exactly once each; the handle decides whether the data is
    embedded, re-read or attached from shared memory.
    """

    spec: EvaluatorSpec
    handle: DatasetHandle

    def __call__(self) -> HaplotypeEvaluator:
        return self.spec.build(self.handle.load())
