"""Tests of the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_known_commands_parse(self):
        parser = build_parser()
        assert parser.parse_args(["table1"]).command == "table1"
        args = parser.parse_args(["simulate", "outdir", "--n-snps", "10"])
        assert args.command == "simulate" and args.n_snps == 10
        args = parser.parse_args(["run", "--population-size", "40", "--workers", "2"])
        assert args.population_size == 40 and args.workers == 2

    def test_experiment_commands_parse(self):
        parser = build_parser()
        assert parser.parse_args(["robustness", "--runs", "3"]).runs == 3
        assert parser.parse_args(["objectives", "--per-size", "10"]).per_size == 10
        assert parser.parse_args(["ablation", "--runs", "2"]).runs == 2
        assert parser.parse_args(["table2", "--quick"]).quick is True
        assert parser.parse_args(["landscape", "--panel-size", "12"]).panel_size == 12
        assert parser.parse_args(["evaluate", "dir", "1", "2", "--statistic", "lrt"]
                                 ).statistic == "lrt"

    def test_backend_flags_parse(self):
        parser = build_parser()
        args = parser.parse_args(["run", "--backend", "process-shm", "--chunk-size", "8"])
        assert args.backend == "process-shm" and args.chunk_size == 8
        args = parser.parse_args(["speedup", "--measured", "--backend", "threads",
                                  "--chunk-size", "4"])
        assert args.backend == "threads" and args.chunk_size == 4
        with pytest.raises(SystemExit):
            parser.parse_args(["run", "--backend", "carrier-pigeon"])

    def test_distributed_flags_parse(self):
        parser = build_parser()
        args = parser.parse_args(
            ["run", "--hosts", "node1:7777", "node2:7777", "--steal-mode", "shm"]
        )
        assert args.hosts == ["node1:7777", "node2:7777"]
        assert args.steal_mode == "shm"
        args = parser.parse_args(["scan", "--cost-model", "model.json",
                                  "--hosts", "node1:7777"])
        assert args.cost_model == "model.json" and args.hosts == ["node1:7777"]
        with pytest.raises(SystemExit):
            parser.parse_args(["scan", "--steal-mode", "carrier-pigeon"])

    def test_worker_command_parses(self):
        parser = build_parser()
        args = parser.parse_args(["worker", "--bind", "0.0.0.0:7777"])
        assert args.command == "worker" and args.bind == "0.0.0.0:7777"
        args = parser.parse_args(["worker", "--bind", ":0", "--max-connections", "2"])
        assert args.max_connections == 2
        with pytest.raises(SystemExit):
            parser.parse_args(["worker"])  # --bind is required


class TestCommands:
    def test_table1_command(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "18,009,460" in out

    def test_simulate_then_evaluate_and_run(self, tmp_path, capsys):
        study_dir = tmp_path / "study"
        assert main([
            "simulate", str(study_dir), "--n-snps", "12",
            "--n-affected", "15", "--n-unaffected", "15", "--seed", "3",
        ]) == 0
        out = capsys.readouterr().out
        assert "planted causal haplotype" in out
        assert (study_dir / "genotypes.csv").exists()
        assert (study_dir / "frequencies.csv").exists()
        assert (study_dir / "ld.csv").exists()

        assert main(["evaluate", str(study_dir), "2", "5", "8"]) == 0
        out = capsys.readouterr().out
        assert "fitness (T1)" in out
        assert "T4:" in out

        assert main([
            "run", str(study_dir), "--population-size", "15", "--max-size", "3",
            "--stagnation", "3", "--max-generations", "5", "--seed", "1",
        ]) == 0
        out = capsys.readouterr().out
        assert "size 2" in out and "size 3" in out
        assert "evaluations" in out
        # the reuse rate (requests vs evaluations) is surfaced in the summary
        assert "evaluation backend: serial" in out
        assert "requests" in out

    def test_run_with_explicit_backend(self, tmp_path, capsys):
        study_dir = tmp_path / "study"
        main(["simulate", str(study_dir), "--n-snps", "10",
              "--n-affected", "12", "--n-unaffected", "12", "--seed", "9"])
        capsys.readouterr()
        assert main([
            "run", str(study_dir), "--backend", "threads", "--workers", "2",
            "--population-size", "10", "--max-size", "3",
            "--stagnation", "2", "--max-generations", "3", "--seed", "1",
        ]) == 0
        out = capsys.readouterr().out
        assert "evaluation backend: threads" in out

    @pytest.mark.slow
    def test_run_with_process_shm_backend(self, tmp_path, capsys):
        study_dir = tmp_path / "study"
        main(["simulate", str(study_dir), "--n-snps", "10",
              "--n-affected", "12", "--n-unaffected", "12", "--seed", "9"])
        capsys.readouterr()
        assert main([
            "run", str(study_dir), "--backend", "process-shm", "--workers", "2",
            "--population-size", "10", "--max-size", "3",
            "--stagnation", "2", "--max-generations", "3", "--seed", "1",
        ]) == 0
        out = capsys.readouterr().out
        assert "evaluation backend: process-shm" in out

    def test_run_distributed_flag_validation(self, tmp_path, capsys):
        study_dir = tmp_path / "study"
        main(["simulate", str(study_dir), "--n-snps", "10",
              "--n-affected", "12", "--n-unaffected", "12", "--seed", "9"])
        capsys.readouterr()
        assert main(["run", str(study_dir), "--backend", "threads",
                     "--hosts", "localhost:7777"]) == 2
        assert "remote" in capsys.readouterr().err
        assert main(["run", str(study_dir), "--backend", "remote"]) == 2
        assert "--hosts" in capsys.readouterr().err

    def test_scan_distributed_flag_validation(self, capsys):
        assert main(["scan", "--backend", "remote"]) == 2
        assert "--hosts" in capsys.readouterr().err
        assert main(["scan", "--hosts", "localhost:7777"]) == 2
        assert "remote" in capsys.readouterr().err
        assert main(["scan", "--steal-mode", "shm", "--backend", "serial"]) == 2
        assert "process-farm" in capsys.readouterr().err

    def test_run_over_local_worker_host(self, tmp_path, capsys):
        from repro.runtime.remote import LocalWorkerHost

        study_dir = tmp_path / "study"
        main(["simulate", str(study_dir), "--n-snps", "10",
              "--n-affected", "12", "--n-unaffected", "12", "--seed", "9"])
        capsys.readouterr()
        host = LocalWorkerHost()
        try:
            # --hosts alone implies --backend remote
            assert main([
                "run", str(study_dir), "--hosts", host.host,
                "--population-size", "10", "--max-size", "3",
                "--stagnation", "2", "--max-generations", "3", "--seed", "1",
            ]) == 0
        finally:
            host.close()
        assert "evaluation backend: remote" in capsys.readouterr().out

    def test_scan_with_cost_model_file(self, tmp_path, capsys):
        import json

        from repro.parallel.pvm import EvaluationCostModel

        study_dir = tmp_path / "study"
        main(["simulate", str(study_dir), "--n-snps", "12",
              "--n-affected", "12", "--n-unaffected", "12", "--seed", "5"])
        model_path = tmp_path / "cost.json"
        model_path.write_text(json.dumps(
            EvaluationCostModel(base_seconds=0.001, growth_factor=2.2).to_json()
        ))
        capsys.readouterr()
        assert main([
            "scan", str(study_dir), "--window-size", "6", "--window-overlap", "2",
            "--population-size", "6", "--max-size", "2", "--stagnation", "1",
            "--max-generations", "2", "--seed", "17",
            "--cost-model", str(model_path),
        ]) == 0
        assert "windows" in capsys.readouterr().out

    def test_scan_cost_model_file_must_be_valid(self, tmp_path, capsys):
        model_path = tmp_path / "cost.json"
        model_path.write_text('{"base_seconds": 0.001}')
        with pytest.raises(ValueError, match="growth_factor"):
            main(["scan", "--window-size", "6", "--cost-model", str(model_path)])

    def test_speedup_command_simulated_only(self, capsys):
        assert main(["speedup"]) == 0
        assert "Simulated PVM speedup" in capsys.readouterr().out

    def test_evaluate_with_significance(self, tmp_path, capsys):
        study_dir = tmp_path / "study"
        main(["simulate", str(study_dir), "--n-snps", "10",
              "--n-affected", "12", "--n-unaffected", "12", "--seed", "4"])
        capsys.readouterr()
        assert main(["evaluate", str(study_dir), "1", "2", "--significance"]) == 0
        assert "Monte-Carlo" in capsys.readouterr().out
