"""Serial (in-process) batch evaluator."""

from __future__ import annotations

from typing import Sequence

from .base import (
    BaseBatchEvaluator,
    DistinctEvaluation,
    FitnessCallable,
    SnpSet,
    evaluate_batch_with,
)

__all__ = ["SerialEvaluator"]


class SerialEvaluator(BaseBatchEvaluator):
    """Evaluate every haplotype of a batch in the calling process.

    This is both the reference implementation the parallel backends are tested
    against (they must return bit-identical fitnesses) and the sensible choice
    for small populations, where process start-up and serialisation overheads
    dominate the actual EM cost.

    The generation-level dedup and the cross-batch fitness cache of
    :class:`~repro.parallel.base.BaseBatchEvaluator` are inherited (and on by
    default); only distinct, unseen haplotypes reach ``fitness``.  When the
    fitness function exposes a batched path
    (:meth:`~repro.stats.evaluation.HaplotypeEvaluator.evaluate_many`), the
    whole distinct remainder of a generation goes through it in one call, so
    its EM problems are stacked into a handful of fused kernel invocations —
    bit-identical results, a fraction of the numpy dispatch.
    """

    def __init__(
        self,
        fitness: FitnessCallable,
        *,
        dedup: bool = True,
        cache_size: int | None = BaseBatchEvaluator.DEFAULT_CACHE_SIZE,
    ) -> None:
        super().__init__(dedup=dedup, cache_size=cache_size)
        self._fitness = fitness

    @property
    def fitness_function(self) -> FitnessCallable:
        return self._fitness

    def _evaluate_distinct(self, batch: Sequence[SnpSet]) -> list[float]:
        return [float(self._fitness(snps)) for snps in batch]

    def _evaluate_distinct_details(self, batch: Sequence[SnpSet]) -> DistinctEvaluation:
        values, n_stacked_em, n_stacked_problems = evaluate_batch_with(
            self._fitness, batch
        )
        return DistinctEvaluation(
            values=values,
            n_stacked_em=n_stacked_em,
            n_stacked_problems=n_stacked_problems,
        )
