"""Tests of the random-immigrant mechanism (paper Section 4.4)."""

import pytest

from repro.core.config import GAConfig
from repro.core.immigrants import RandomImmigrantPolicy
from repro.core.individual import HaplotypeIndividual
from repro.core.population import MultiPopulation
from repro.genetics.constraints import HaplotypeConstraints


@pytest.fixture()
def population():
    config = GAConfig(population_size=20, min_haplotype_size=2, max_haplotype_size=3)
    population = MultiPopulation(config, n_snps=10)
    fitnesses2 = [1.0, 2.0, 3.0, 10.0]
    for i, fitness in enumerate(fitnesses2):
        population.try_insert(HaplotypeIndividual((0, i + 1), fitness))
    fitnesses3 = [5.0, 6.0, 20.0]
    for i, fitness in enumerate(fitnesses3):
        population.try_insert(HaplotypeIndividual((0, 1, i + 2), fitness))
    return population


class TestTrigger:
    def test_triggers_on_multiples_of_threshold(self):
        policy = RandomImmigrantPolicy(stagnation_threshold=5)
        assert not policy.should_trigger(0)
        assert not policy.should_trigger(4)
        assert policy.should_trigger(5)
        assert not policy.should_trigger(6)
        assert policy.should_trigger(10)

    def test_disabled_policy_never_triggers(self):
        policy = RandomImmigrantPolicy(stagnation_threshold=5, enabled=False)
        assert not policy.should_trigger(5)

    def test_validation(self):
        with pytest.raises(ValueError):
            RandomImmigrantPolicy(stagnation_threshold=0)


class TestPlanAndApply:
    def test_plan_targets_below_mean_individuals(self, population, rng):
        policy = RandomImmigrantPolicy(stagnation_threshold=5)
        constraints = HaplotypeConstraints.unconstrained(10)
        plan = policy.plan(population, constraints, rng)
        assert policy.n_triggers == 1
        # size-2 sub-population: mean 4.0 -> members with fitness 1, 2, 3 replaced
        assert len(plan.slots[2]) == 3
        # size-3 sub-population: mean ~10.3 -> members with 5 and 6 replaced
        assert len(plan.slots[3]) == 2
        assert plan.n_replacements == 5
        # candidate haplotypes have the right size and are not duplicates of survivors
        for size, candidates in plan.candidates.items():
            for snps in candidates:
                assert len(snps) == size

    def test_apply_installs_evaluated_immigrants(self, population, rng):
        policy = RandomImmigrantPolicy(stagnation_threshold=5)
        constraints = HaplotypeConstraints.unconstrained(10)
        plan = policy.plan(population, constraints, rng)
        evaluated = {
            size: [HaplotypeIndividual(snps, 0.5) for snps in candidates]
            for size, candidates in plan.candidates.items()
        }
        replaced = RandomImmigrantPolicy.apply(population, plan, evaluated)
        assert replaced == plan.n_replacements
        # the best individuals survived the replacement
        assert population.subpopulation(2).best().fitness_value() == pytest.approx(10.0)
        assert population.subpopulation(3).best().fitness_value() == pytest.approx(20.0)
        # population sizes unchanged
        assert len(population.subpopulation(2)) == 4
        assert len(population.subpopulation(3)) == 3

    def test_plan_skips_tiny_subpopulations(self, rng):
        config = GAConfig(population_size=20, min_haplotype_size=2, max_haplotype_size=3)
        population = MultiPopulation(config, n_snps=10)
        population.try_insert(HaplotypeIndividual((0, 1), 1.0))  # single member
        policy = RandomImmigrantPolicy(stagnation_threshold=5)
        plan = policy.plan(population, HaplotypeConstraints.unconstrained(10), rng)
        assert plan.n_replacements == 0
