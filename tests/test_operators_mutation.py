"""Tests of the three mutation operators (paper Section 4.3.1)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.individual import HaplotypeIndividual
from repro.core.operators.mutation import (
    AugmentationMutation,
    PointMutation,
    ReductionMutation,
)
from repro.genetics.constraints import HaplotypeConstraints

N_SNPS = 14


@pytest.fixture()
def constraints():
    return HaplotypeConstraints.unconstrained(N_SNPS)


class TestPointMutation:
    def test_preserves_size_and_changes_one_snp(self, constraints, rng):
        operator = PointMutation(n_trials=5)
        parent = HaplotypeIndividual((2, 5, 9))
        for candidate in operator.propose(parent, constraints, rng):
            assert len(candidate) == parent.size
            assert candidate == tuple(sorted(set(candidate)))
            assert candidate != parent.snps
            # exactly one SNP differs
            assert len(set(candidate) ^ set(parent.snps)) == 2

    def test_number_of_trials_bounds_candidates(self, constraints, rng):
        operator = PointMutation(n_trials=3)
        parent = HaplotypeIndividual((0, 1))
        assert len(operator.propose(parent, constraints, rng)) <= 3

    def test_no_duplicate_candidates(self, constraints, rng):
        operator = PointMutation(n_trials=10)
        parent = HaplotypeIndividual((0, 1, 2))
        candidates = operator.propose(parent, constraints, rng)
        assert len(candidates) == len(set(candidates))

    def test_applicable_to_any_size(self, constraints):
        operator = PointMutation()
        assert operator.is_applicable(HaplotypeIndividual((0,)))

    def test_invalid_trials_rejected(self):
        with pytest.raises(ValueError):
            PointMutation(n_trials=0)

    def test_no_candidate_when_panel_exhausted(self, rng):
        # haplotype uses every SNP of a 3-SNP panel: nothing to swap in
        constraints = HaplotypeConstraints.unconstrained(3)
        operator = PointMutation(n_trials=4)
        parent = HaplotypeIndividual((0, 1, 2))
        assert operator.propose(parent, constraints, rng) == []


class TestReductionMutation:
    def test_removes_exactly_one_snp(self, constraints, rng):
        operator = ReductionMutation(min_size=2)
        parent = HaplotypeIndividual((2, 5, 9))
        (candidate,) = operator.propose(parent, constraints, rng)
        assert len(candidate) == 2
        assert set(candidate) < set(parent.snps)

    def test_not_applicable_at_min_size(self, constraints, rng):
        operator = ReductionMutation(min_size=2)
        parent = HaplotypeIndividual((2, 5))
        assert not operator.is_applicable(parent)
        assert operator.propose(parent, constraints, rng) == []

    def test_invalid_min_size(self):
        with pytest.raises(ValueError):
            ReductionMutation(min_size=0)


class TestAugmentationMutation:
    def test_adds_exactly_one_snp(self, constraints, rng):
        operator = AugmentationMutation(max_size=6)
        parent = HaplotypeIndividual((2, 5, 9))
        (candidate,) = operator.propose(parent, constraints, rng)
        assert len(candidate) == 4
        assert set(parent.snps) < set(candidate)

    def test_not_applicable_at_max_size(self, constraints, rng):
        operator = AugmentationMutation(max_size=3)
        parent = HaplotypeIndividual((2, 5, 9))
        assert not operator.is_applicable(parent)
        assert operator.propose(parent, constraints, rng) == []

    def test_respects_constraints(self, rng):
        # SNP 2 excludes every other SNP -> augmentation of (2,) has no candidate...
        ld = np.ones((4, 4)) * 0.99
        np.fill_diagonal(ld, 1.0)
        from repro.genetics.frequencies import SnpFrequencyTable
        from repro.genetics.ld import PairwiseLDTable

        names = tuple(f"s{i}" for i in range(4))
        constraints = HaplotypeConstraints(
            ld_table=PairwiseLDTable(names, ld),
            frequency_table=SnpFrequencyTable(names, np.full(4, 0.5), np.full(4, 0.5)),
            max_pairwise_ld=0.9,
        )
        operator = AugmentationMutation(max_size=6)
        assert operator.propose(HaplotypeIndividual((2,)), constraints, rng) == []

    def test_invalid_max_size(self):
        with pytest.raises(ValueError):
            AugmentationMutation(max_size=0)


class TestSizeCooperation:
    """Reduction and augmentation move individuals between sub-populations."""

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_size_changes_are_one_step(self, seed):
        rng = np.random.default_rng(seed)
        constraints = HaplotypeConstraints.unconstrained(N_SNPS)
        size = int(rng.integers(3, 6))
        snps = tuple(sorted(rng.choice(N_SNPS, size=size, replace=False).tolist()))
        parent = HaplotypeIndividual(snps)
        for candidate in ReductionMutation(2).propose(parent, constraints, rng):
            assert len(candidate) == size - 1
        for candidate in AugmentationMutation(6).propose(parent, constraints, rng):
            assert len(candidate) == size + 1
