"""Canonical datasets used by the experiment harnesses.

All experiments run against the same deterministic stand-ins for the paper's
data (see ``DESIGN.md`` for the substitution rationale):

* ``lille51`` — 106 individuals × 51 SNPs (53 affected / 53 unaffected), the
  dataset of the paper's reported study;
* ``lille51_reduced`` — a reduced SNP panel around the planted haplotype, used
  by the landscape study where exhaustive enumeration of sizes up to 4 must
  stay cheap;
* ``large249`` — the 249-SNP / 176-individual analogue of the paper's larger
  files.

The builders are memoised so that repeated calls (tests, benches, examples)
share one simulation.
"""

from __future__ import annotations

from functools import lru_cache

from ..genetics.constraints import HaplotypeConstraints, build_constraints
from ..genetics.simulate import SimulatedStudy, large_study_249, lille_like_study
from ..runtime.spec import EvaluatorSpec
from ..stats.evaluation import HaplotypeEvaluator

__all__ = [
    "DEFAULT_SEED",
    "lille51",
    "lille51_evaluator",
    "lille51_spec",
    "lille51_constraints",
    "reduced_snp_panel",
    "large249",
]

#: Seed used by every canonical dataset (the paper's publication year).
DEFAULT_SEED: int = 2004


@lru_cache(maxsize=8)
def lille51(seed: int = DEFAULT_SEED) -> SimulatedStudy:
    """The 106 × 51 case/control study standing in for the Lille dataset."""
    return lille_like_study(seed=seed)


@lru_cache(maxsize=8)
def lille51_evaluator(seed: int = DEFAULT_SEED, statistic: str = "t1") -> HaplotypeEvaluator:
    """A shared EH-DIALL + CLUMP evaluator over :func:`lille51`."""
    return HaplotypeEvaluator(lille51(seed).dataset, statistic=statistic)


def lille51_spec(statistic: str = "t1") -> EvaluatorSpec:
    """The evaluator recipe every canonical experiment runs with.

    Combine with :func:`lille51` through the execution-backend registry
    (:func:`repro.runtime.backends.create_evaluator`) to build the same
    pipeline on any backend.
    """
    return EvaluatorSpec(statistic=statistic)


@lru_cache(maxsize=8)
def lille51_constraints(
    seed: int = DEFAULT_SEED,
    max_pairwise_ld: float = 1.0,
    min_minor_frequency_difference: float = 0.0,
) -> HaplotypeConstraints:
    """Haplotype-validity constraints built from the :func:`lille51` genotypes."""
    return build_constraints(
        lille51(seed).dataset,
        max_pairwise_ld=max_pairwise_ld,
        min_minor_frequency_difference=min_minor_frequency_difference,
    )


def reduced_snp_panel(seed: int = DEFAULT_SEED, n_snps: int = 18) -> tuple[int, ...]:
    """A reduced SNP panel for exhaustive landscape studies.

    The panel always contains the planted causal SNPs (so the interesting
    structure is preserved) padded with the lowest-index remaining SNPs up to
    ``n_snps`` markers.
    """
    study = lille51(seed)
    causal = list(study.causal_snps)
    if n_snps < len(causal):
        raise ValueError(f"n_snps must be at least {len(causal)} to keep the causal SNPs")
    panel = list(causal)
    candidate = 0
    while len(panel) < min(n_snps, study.dataset.n_snps):
        if candidate not in panel:
            panel.append(candidate)
        candidate += 1
    return tuple(sorted(panel))


@lru_cache(maxsize=2)
def large249(seed: int = DEFAULT_SEED) -> SimulatedStudy:
    """The 249-SNP / 176-individual analogue of the paper's larger files."""
    return large_study_249(seed=seed)
